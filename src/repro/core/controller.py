"""The ClickINC controller: compile → place → synthesise → deploy.

This is the user-facing entry point of the library.  A typical session:

.. code-block:: python

    from repro.core import ClickINC
    from repro.topology import build_paper_emulation_topology
    from repro.apps import KVSApplication

    topo = build_paper_emulation_topology()
    inc = ClickINC(topo)
    app = KVSApplication(name="kvs_0")
    deployed = inc.deploy_profile(app.profile(),
                                  source_groups=app.source_groups,
                                  destination_group=app.destination_group)
    metrics = inc.run_traffic(app.workload().packets(1000))
    inc.remove("kvs_0")
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.backend.codegen import generate_for_device
from repro.emulator.metrics import RunMetrics
from repro.emulator.network import NetworkEmulator
from repro.emulator.packet import Packet
from repro.exceptions import DeploymentError
from repro.frontend.compiler import FrontendCompiler
from repro.ir.program import IRProgram
from repro.lang.profile import Profile
from repro.placement.dp import DPPlacer, PlacementRequest
from repro.placement.plan import PlacementPlan
from repro.synthesis.incremental import IncrementalSynthesizer, SynthesisDelta
from repro.topology.network import NetworkTopology


@dataclass
class DeployedProgram:
    """Book-keeping for one deployed user program."""

    name: str
    plan: PlacementPlan
    delta: SynthesisDelta
    source_groups: List[str]
    destination_group: str
    device_sources: Dict[str, str] = field(default_factory=dict)
    deploy_time_s: float = 0.0

    def devices(self) -> List[str]:
        return self.plan.devices_used()


class ClickINC:
    """The ClickINC in-network-computing service controller."""

    def __init__(self, topology: NetworkTopology, incremental: bool = True,
                 adaptive_weights: bool = True, generate_code: bool = True) -> None:
        self.topology = topology
        self.compiler = FrontendCompiler()
        self.placer = DPPlacer(topology)
        self.synthesizer = IncrementalSynthesizer(topology, incremental=incremental)
        self.emulator = NetworkEmulator(topology)
        self.adaptive_weights = adaptive_weights
        self.generate_code = generate_code
        self.deployed: Dict[str, DeployedProgram] = {}

    # ------------------------------------------------------------------ #
    # compile + deploy
    # ------------------------------------------------------------------ #
    def deploy_profile(self, profile: Profile, source_groups: Sequence[str],
                       destination_group: str,
                       name: Optional[str] = None) -> DeployedProgram:
        """Deploy a template-based program described by *profile*."""
        program_name = name or f"{profile.app.lower()}_{profile.user}"
        program = self.compiler.compile_profile(profile, name=program_name)
        return self.deploy_program(program, source_groups, destination_group)

    def deploy_source(self, source: str, source_groups: Sequence[str],
                      destination_group: str, name: str,
                      constants: Optional[Dict[str, object]] = None,
                      header_fields: Optional[Dict[str, int]] = None
                      ) -> DeployedProgram:
        """Deploy a hand-written ClickINC program."""
        program = self.compiler.compile_source(
            source, name=name, constants=constants, header_fields=header_fields
        )
        return self.deploy_program(program, source_groups, destination_group)

    def deploy_program(self, program: IRProgram, source_groups: Sequence[str],
                       destination_group: str,
                       traffic_rates: Optional[Dict[str, float]] = None
                       ) -> DeployedProgram:
        """Place, synthesise, and install an already-compiled IR program."""
        if program.name in self.deployed:
            raise DeploymentError(f"program {program.name!r} is already deployed")
        start = time.perf_counter()
        request = PlacementRequest(
            program=program,
            source_groups=list(source_groups),
            destination_group=destination_group,
            traffic_rates=traffic_rates,
            adaptive_weights=self.adaptive_weights,
        )
        plan = self.placer.place(request)
        self.placer.commit(plan)
        delta = self.synthesizer.add_program(plan)
        self.emulator.deploy(plan, source_groups, destination_group)

        device_sources: Dict[str, str] = {}
        if self.generate_code:
            for device_name, snippet in plan.device_snippets().items():
                device = self.topology.device(device_name)
                device_sources[device_name] = generate_for_device(device, snippet)

        deployed = DeployedProgram(
            name=program.name,
            plan=plan,
            delta=delta,
            source_groups=list(source_groups),
            destination_group=destination_group,
            device_sources=device_sources,
            deploy_time_s=time.perf_counter() - start,
        )
        self.deployed[program.name] = deployed
        return deployed

    def remove(self, name: str, lazy: bool = True) -> SynthesisDelta:
        """Remove a deployed program, releasing its resources."""
        deployed = self.deployed.pop(name, None)
        if deployed is None:
            raise DeploymentError(f"program {name!r} is not deployed")
        delta = self.synthesizer.remove_program(name, lazy=lazy)
        self.placer.release(deployed.plan)
        self.emulator.undeploy(name)
        return delta

    # ------------------------------------------------------------------ #
    # runtime
    # ------------------------------------------------------------------ #
    def run_traffic(self, packets: Sequence[Packet], **kwargs) -> RunMetrics:
        """Send packets through the emulated network."""
        return self.emulator.run(packets, **kwargs)

    # ------------------------------------------------------------------ #
    # inspection
    # ------------------------------------------------------------------ #
    def deployed_programs(self) -> List[str]:
        return sorted(self.deployed)

    def placement_summary(self, name: str) -> Dict[str, object]:
        deployed = self.deployed.get(name)
        if deployed is None:
            raise DeploymentError(f"program {name!r} is not deployed")
        return deployed.plan.summary()

    def network_utilisation(self) -> float:
        return self.topology.total_utilisation()

    def generated_code(self, name: str, device_name: str) -> str:
        deployed = self.deployed.get(name)
        if deployed is None:
            raise DeploymentError(f"program {name!r} is not deployed")
        try:
            return deployed.device_sources[device_name]
        except KeyError as exc:
            raise DeploymentError(
                f"program {name!r} has no snippet on device {device_name!r}"
            ) from exc
