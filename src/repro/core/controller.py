"""The ClickINC controller: compile → place → synthesise → deploy.

This is the user-facing entry point of the library.  A typical session:

.. code-block:: python

    from repro.core import ClickINC
    from repro.topology import build_paper_emulation_topology
    from repro.apps import KVSApplication

    topo = build_paper_emulation_topology()
    inc = ClickINC(topo)
    app = KVSApplication(name="kvs_0")
    deployed = inc.deploy_profile(app.profile(),
                                  source_groups=app.source_groups,
                                  destination_group=app.destination_group)
    metrics = inc.run_traffic(app.workload().packets(1000))
    inc.remove("kvs_0")

Deployment itself is delegated to the staged
:class:`~repro.core.pipeline.CompilationPipeline`, which memoises compiled
programs, placement plans and generated backend code in a shared
:class:`~repro.core.cache.ArtifactCache` and rolls back mid-pipeline
failures.  ``deploy_many`` batches independent requests: their pure compile
stages run concurrently, their commits run sequentially in request order, so
a batch is deterministic and produces the placements of the equivalent
serial loop.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.core.cache import ArtifactCache
from repro.core.pipeline import (
    CompilationPipeline,
    DeployedProgram,
    DeployRequest,
    PipelineReport,
)
from repro.emulator.metrics import RunMetrics
from repro.emulator.network import NetworkEmulator
from repro.emulator.packet import Packet
from repro.exceptions import DeploymentError
from repro.frontend.compiler import FrontendCompiler
from repro.ir.program import IRProgram
from repro.lang.profile import Profile
from repro.obs import Observability
from repro.placement.dp import DPPlacer
from repro.placement.memo import PlacementMemo, SharedPlacementMemo
from repro.synthesis.incremental import IncrementalSynthesizer, SynthesisDelta
from repro.topology.network import NetworkTopology

__all__ = ["ClickINC", "DeployedProgram"]


class ClickINC:
    """The ClickINC in-network-computing service controller."""

    def __init__(self, topology: NetworkTopology, incremental: bool = True,
                 adaptive_weights: bool = True, generate_code: bool = True,
                 cache: Optional[ArtifactCache] = None,
                 memo: Optional[PlacementMemo] = None,
                 memo_path: Optional[str] = None,
                 obs: Optional["Observability"] = None) -> None:
        self.topology = topology
        self.compiler = FrontendCompiler()
        # The placement memo defaults to the shared flavour so worker pools
        # receive/ship memo deltas out of the box; pass ``memo=`` to share
        # one store between controllers (the ShardCoordinator does), and
        # ``memo_path=`` to persist it across restarts — an existing file
        # is restored here (with fingerprint validation; a stale or corrupt
        # file cold-solves) and ``close()`` writes the store back.
        owns_memo = memo is None
        self.memo = memo if memo is not None else SharedPlacementMemo()
        self.memo_path = memo_path
        if owns_memo and memo_path is not None:
            import os

            if os.path.exists(memo_path) and hasattr(self.memo, "restore"):
                self.memo.restore(memo_path, topology)
        self.placer = DPPlacer(topology, memo=self.memo)
        self.synthesizer = IncrementalSynthesizer(topology, incremental=incremental)
        self.emulator = NetworkEmulator(topology)
        self.adaptive_weights = adaptive_weights
        self.generate_code = generate_code
        self.cache = cache if cache is not None else ArtifactCache()
        self.obs = obs if obs is not None else Observability.default()
        self.pipeline = CompilationPipeline(
            topology=topology,
            compiler=self.compiler,
            placer=self.placer,
            synthesizer=self.synthesizer,
            emulator=self.emulator,
            cache=self.cache,
            generate_code=generate_code,
            adaptive_weights=adaptive_weights,
            obs=self.obs,
        )
        # expose the memo's live counter bag on the registry (shared memos
        # register once thanks to identity-keyed registration)
        memo_counters = getattr(self.memo, "counters", None)
        if memo_counters is not None:
            self.obs.registry.register_counters("clickinc_memo", memo_counters)
        self.deployed: Dict[str, DeployedProgram] = {}
        self._runtime = None   # lazily-created RuntimeManager (see runtime())

    # ------------------------------------------------------------------ #
    # compile + deploy
    # ------------------------------------------------------------------ #
    def deploy_profile(self, profile: Profile, source_groups: Sequence[str],
                       destination_group: str,
                       name: Optional[str] = None,
                       traffic_rates: Optional[Dict[str, float]] = None
                       ) -> DeployedProgram:
        """Deploy a template-based program described by *profile*."""
        return self._deploy(DeployRequest(
            source_groups=list(source_groups),
            destination_group=destination_group,
            name=name,
            profile=profile,
            traffic_rates=traffic_rates,
        ))

    def deploy_source(self, source: str, source_groups: Sequence[str],
                      destination_group: str, name: str,
                      constants: Optional[Dict[str, object]] = None,
                      header_fields: Optional[Dict[str, int]] = None,
                      traffic_rates: Optional[Dict[str, float]] = None
                      ) -> DeployedProgram:
        """Deploy a hand-written ClickINC program."""
        return self._deploy(DeployRequest(
            source_groups=list(source_groups),
            destination_group=destination_group,
            name=name,
            source=source,
            constants=constants,
            header_fields=header_fields,
            traffic_rates=traffic_rates,
        ))

    def deploy_program(self, program: IRProgram, source_groups: Sequence[str],
                       destination_group: str,
                       traffic_rates: Optional[Dict[str, float]] = None,
                       name: Optional[str] = None) -> DeployedProgram:
        """Place, synthesise, and install an already-compiled IR program.

        When *name* is given the program is deployed under it (the IR is
        re-owned accordingly); otherwise the program's own name is used.
        """
        return self._deploy(DeployRequest(
            source_groups=list(source_groups),
            destination_group=destination_group,
            name=name,
            program=program,
            traffic_rates=traffic_rates,
        ))

    def _deploy(self, request: DeployRequest) -> DeployedProgram:
        name = request.resolved_name()
        if name in self.deployed:
            raise DeploymentError(f"program {name!r} is already deployed")
        report = self.pipeline.run(request)
        self.deployed[report.program_name] = report.deployed
        return report.deployed

    def deploy_many(self, requests: Sequence[DeployRequest],
                    max_workers: Optional[int] = None,
                    workers: Optional[int] = None) -> List[PipelineReport]:
        """Deploy a batch of independent requests.

        By default the pure compile stages overlap on a thread pool.  With
        ``workers=N`` (N > 1) the frontend *and the placement search* of
        every request run in a process pool for a real multi-core speedup:
        placement is commit-free, so workers speculatively place against a
        snapshot of device allocations and the sequential commit phase
        validates each plan's device fingerprints, re-placing on conflict.
        Either way placement, synthesis and emulator installs commit
        sequentially in request order, so the batch produces exactly the
        placements (and name-collision behaviour) of a serial loop over the
        same requests.  The worker pool is persistent: the first
        ``workers=N`` batch forks it, later batches re-sync the workers'
        topology snapshots via fingerprint deltas instead of re-forking
        (release it with :meth:`close` or a ``with`` block).  Requests
        caught in a worker-process crash are retried in-process; only a
        genuine failure is captured, per request, never a batch abort.

        Returns one :class:`PipelineReport` per request, in request order;
        failed requests carry ``succeeded=False`` and an ``error`` instead
        of aborting the batch.  A duplicate name fails at the ``validation``
        stage only if the earlier holder of the name actually deployed.
        """
        reports = self.pipeline.run_many(list(requests),
                                         max_workers=max_workers,
                                         workers=workers)
        for report in reports:
            if report.succeeded:
                self.deployed[report.program_name] = report.deployed
        return reports

    def update_program(self, name: str,
                       source: Optional[str] = None,
                       profile: Optional[Profile] = None,
                       program: Optional[IRProgram] = None,
                       constants: Optional[Dict[str, object]] = None,
                       header_fields: Optional[Dict[str, int]] = None,
                       traffic_rates: Optional[Dict[str, float]] = None
                       ) -> PipelineReport:
        """Atomically swap a deployed program for a new version.

        Exactly one of *source* / *profile* / *program* describes the new
        version; routing (source groups, destination, traffic rates) is
        inherited from the running deployment unless *traffic_rates*
        overrides it.  The new version is compiled against a shadow
        snapshot, then swapped in through the serial commit phase as one
        wave barrier: concurrent ``deploy``/``remove`` callers serialised
        through that phase observe either the old version or the new one,
        never a half-updated network.  Compatible register/table state
        carries across.  On any failure the old version is reinstalled
        unchanged and the error re-raised.
        """
        deployed = self.deployed.get(name)
        if deployed is None:
            raise DeploymentError(f"program {name!r} is not deployed")
        request = DeployRequest(
            source_groups=list(deployed.source_groups),
            destination_group=deployed.destination_group,
            name=name,
            source=source,
            profile=profile,
            program=program,
            constants=constants,
            header_fields=header_fields,
            traffic_rates=traffic_rates if traffic_rates is not None
            else deployed.traffic_rates,
        )
        report = self.pipeline.update(name, deployed, request)
        self.deployed[name] = report.deployed
        return report

    def remove(self, name: str, lazy: bool = True) -> SynthesisDelta:
        """Remove a deployed program, releasing its resources.

        Removal is atomic with respect to the controller's book-keeping: the
        program stays registered until every layer released it, and a failure
        mid-removal re-installs the already-released layers before
        re-raising, so no resources are stranded without a record.  The
        removal also evicts plan-cache entries stamped against the
        pre-removal allocations of the affected devices (they can no longer
        validate once the capacity they assumed occupied is free again).
        """
        deployed = self.deployed.get(name)
        if deployed is None:
            raise DeploymentError(f"program {name!r} is not deployed")
        delta = self.pipeline.remove(name, deployed, lazy=lazy)
        del self.deployed[name]
        return delta

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Release the persistent worker pool deterministically.

        Safe to call multiple times; afterwards the controller remains
        usable (a later ``deploy_many(workers=N)`` simply starts a fresh
        pool).  Without an explicit close the pool would only be reaped at
        garbage collection / interpreter exit.  With ``memo_path`` set the
        placement memo is persisted here (best-effort — a failed write
        never blocks shutdown; the next start simply cold-solves).
        """
        self.pipeline.close()
        if self.memo_path is not None and hasattr(self.memo, "save"):
            try:
                self.memo.save(self.memo_path, self.topology)
            except Exception:
                pass

    def __enter__(self) -> "ClickINC":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()

    def as_service(self, workers: int = 2, max_wave: int = 8):
        """An asyncio :class:`~repro.core.service.INCService` over this
        controller (shares its pipeline, cache and deployed-program
        registry)."""
        from repro.core.service import INCService

        return INCService(self, workers=workers, max_wave=max_wave)

    def runtime(self, auto_migrate: Optional[bool] = None):
        """The :class:`~repro.runtime.manager.RuntimeManager` over this
        controller (created on first use, then shared).

        The manager owns a health monitor over the topology and reacts to
        device failures/drains by live-migrating exactly the programs the
        event affects; see :mod:`repro.runtime`.  *auto_migrate* configures
        that reaction: ``None`` (the default) leaves the existing manager's
        setting untouched (managers are created with it enabled), while an
        explicit True/False applies to the shared manager even when it
        already exists.
        """
        if getattr(self, "_runtime", None) is None:
            from repro.runtime.manager import RuntimeManager

            self._runtime = RuntimeManager(
                self,
                auto_migrate=True if auto_migrate is None else auto_migrate,
            )
        elif auto_migrate is not None:
            self._runtime.auto_migrate = auto_migrate
        return self._runtime

    # ------------------------------------------------------------------ #
    # runtime
    # ------------------------------------------------------------------ #
    def run_traffic(self, packets: Sequence[Packet], **kwargs) -> RunMetrics:
        """Send packets through the emulated network."""
        return self.emulator.run(packets, **kwargs)

    # ------------------------------------------------------------------ #
    # inspection
    # ------------------------------------------------------------------ #
    def deployed_programs(self) -> List[str]:
        return sorted(self.deployed)

    def placement_summary(self, name: str) -> Dict[str, object]:
        deployed = self.deployed.get(name)
        if deployed is None:
            raise DeploymentError(f"program {name!r} is not deployed")
        return deployed.plan.summary()

    def network_utilisation(self) -> float:
        return self.topology.total_utilisation()

    def cache_summary(self) -> Dict[str, object]:
        """Hit/miss statistics of the shared artifact cache."""
        return self.cache.summary()

    def generated_code(self, name: str, device_name: str) -> str:
        deployed = self.deployed.get(name)
        if deployed is None:
            raise DeploymentError(f"program {name!r} is not deployed")
        try:
            return deployed.device_sources[device_name]
        except KeyError as exc:
            raise DeploymentError(
                f"program {name!r} has no snippet on device {device_name!r}"
            ) from exc
