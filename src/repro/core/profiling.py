"""Back-compat shim: placement profiling now lives in :mod:`repro.obs`.

:class:`StageTimers`, :class:`PlacementCounters` and
:class:`PlacementProfile` moved to :mod:`repro.obs.profiling` when the
unified telemetry layer landed — every live profile now also feeds the
metrics registry (``clickinc_placement_*`` series on ``/v1/metrics``).
This module re-exports the classes unchanged so existing imports (the
DP placer, benchmarks, external scripts) keep working, and it still owns
the CI demo: ``python -m repro.core.profiling`` places two templates on
the Fig. 11 topology and prints the profile summary as JSON, exactly as
before.
"""

from __future__ import annotations

from typing import Dict

from repro.obs.profiling import (  # noqa: F401  (re-exported)
    PlacementCounters,
    PlacementProfile,
    StageTimers,
)

__all__ = ["PlacementCounters", "StageTimers", "PlacementProfile"]


def _demo_summary() -> Dict[str, object]:
    """Place two templates on the Fig. 11 topology and return the profile.

    Used by ``python -m repro.core.profiling`` so CI can surface the memo /
    vectorisation counters without writing a bespoke script.
    """
    from repro.frontend import compile_template
    from repro.lang.profile import default_profile
    from repro.placement.dp import DPPlacer, PlacementRequest
    from repro.topology.fattree import build_paper_emulation_topology

    topology = build_paper_emulation_topology()
    placer = DPPlacer(topology)
    for index, app in enumerate(("KVS", "MLAgg")):
        program = compile_template(default_profile(app), name=f"{app.lower()}_prof")
        plan = placer.place(PlacementRequest(
            program=program, source_groups=["pod0(a)", "pod1(a)"],
            destination_group="pod2(b)",
        ))
        placer.commit(plan)
        if index == 0:
            # re-place the same workload so the memo counters are non-trivial
            placer.place(PlacementRequest(
                program=program, source_groups=["pod0(a)", "pod1(a)"],
                destination_group="pod2(b)",
            ))
    return placer.profile.summary()


if __name__ == "__main__":  # pragma: no cover - exercised by CI
    import json

    print(json.dumps(_demo_summary(), indent=2, sort_keys=True))
