"""Lightweight profiling hooks for the placement engine.

The fabric-scale benchmarks need to attribute placement time to *search*
(DP recursion), *scoring* (objective evaluation), *feasibility* (intra-device
allocation) and *validation* (fingerprint sweeps), and to report how often
the cross-epoch memo table short-circuits each of those.  Two small pieces
provide that without touching the hot loops' structure:

* :class:`StageTimers` — named wall-clock accumulators used as context
  managers around each placement stage;
* :class:`PlacementCounters` — a :class:`~repro.core.stats.CounterMixin`
  dataclass of running integer counters bumped from the DP placer, so a
  mistyped counter name fails loudly like every other stats object in the
  repo.

:class:`PlacementProfile` bundles the two and renders one flat summary dict
that the benchmarks serialise next to their timing numbers and the CI
coverage job prints into its step summary (``python -m repro.core.profiling``
runs a small end-to-end placement and prints that dict).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, fields
from typing import Dict, Iterator

from repro.core.stats import CounterMixin

__all__ = ["PlacementCounters", "StageTimers", "PlacementProfile"]


@dataclass
class PlacementCounters(CounterMixin):
    """Running counters of the DP placer's optimised search path."""

    #: intervals evaluated (memo hits + misses)
    interval_evals: int = 0
    #: interval evaluations answered from the cross-epoch memo
    interval_memo_hits: int = 0
    #: per-device feasibility checks requested (memo hits + allocator runs)
    device_checks: int = 0
    #: feasibility checks answered from the memo without running Algorithm 2
    device_memo_hits: int = 0
    #: client/server sub-tree DP tables solved from scratch
    subtree_solves: int = 0
    #: sub-tree tables reused from the memo via signature correspondence
    subtree_memo_hits: int = 0
    #: batched objective rows computed by the vectorised scorer
    score_rows: int = 0
    #: individual interval gains served from those rows
    scored_intervals: int = 0
    #: candidate combinations enumerated by the deduplicated product
    product_combos: int = 0
    #: symmetric child groups whose permutations were collapsed
    product_symmetric_groups: int = 0
    #: memo entries dropped by commit/release/remove pruning
    memo_pruned_entries: int = 0

    def summary(self) -> Dict[str, int]:
        return {f.name: getattr(self, f.name) for f in fields(self)}


class StageTimers:
    """Named wall-clock accumulators: seconds and call counts per stage."""

    def __init__(self) -> None:
        self._seconds: Dict[str, float] = {}
        self._calls: Dict[str, int] = {}

    @contextmanager
    def stage(self, name: str) -> Iterator[None]:
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self._seconds[name] = self._seconds.get(name, 0.0) + elapsed
            self._calls[name] = self._calls.get(name, 0) + 1

    def seconds(self, name: str) -> float:
        return self._seconds.get(name, 0.0)

    def calls(self, name: str) -> int:
        return self._calls.get(name, 0)

    def summary(self) -> Dict[str, Dict[str, float]]:
        return {
            name: {"seconds": round(self._seconds[name], 6),
                   "calls": self._calls[name]}
            for name in sorted(self._seconds)
        }

    def reset(self) -> None:
        self._seconds.clear()
        self._calls.clear()


class PlacementProfile:
    """Counters + timers for one :class:`~repro.placement.dp.DPPlacer`."""

    def __init__(self) -> None:
        self.counters = PlacementCounters()
        self.timers = StageTimers()

    def reset(self) -> None:
        self.counters = PlacementCounters()
        self.timers.reset()

    def summary(self) -> Dict[str, object]:
        return {"counters": self.counters.summary(),
                "timers": self.timers.summary()}


def _demo_summary() -> Dict[str, object]:
    """Place two templates on the Fig. 11 topology and return the profile.

    Used by ``python -m repro.core.profiling`` so CI can surface the memo /
    vectorisation counters without writing a bespoke script.
    """
    from repro.frontend import compile_template
    from repro.lang.profile import default_profile
    from repro.placement.dp import DPPlacer, PlacementRequest
    from repro.topology.fattree import build_paper_emulation_topology

    topology = build_paper_emulation_topology()
    placer = DPPlacer(topology)
    for index, app in enumerate(("KVS", "MLAgg")):
        program = compile_template(default_profile(app), name=f"{app.lower()}_prof")
        plan = placer.place(PlacementRequest(
            program=program, source_groups=["pod0(a)", "pod1(a)"],
            destination_group="pod2(b)",
        ))
        placer.commit(plan)
        if index == 0:
            # re-place the same workload so the memo counters are non-trivial
            placer.place(PlacementRequest(
                program=program, source_groups=["pod0(a)", "pod1(a)"],
                destination_group="pod2(b)",
            ))
    return placer.profile.summary()


if __name__ == "__main__":  # pragma: no cover - exercised by CI
    import json

    print(json.dumps(_demo_summary(), indent=2, sort_keys=True))
