"""The asyncio service runtime: ClickINC as an always-on service.

The paper's pitch is in-network computing **as a service**: many tenants
continuously submit, update and remove programs against one shared network.
:class:`INCService` is that front-end — an asyncio API over the staged
pipeline::

    async with INCService(topology, workers=4) as svc:
        report = await svc.submit(request)        # deploy
        ...
        await svc.remove(report.program_name)     # undeploy
        await svc.drain()                         # quiesce

Requests enter an **admission queue** and are drained by a single dispatcher
task into *speculative compile waves*: each wave of contiguous submissions
runs the pure compile + speculative placement phase on the pipeline's
persistent process pool (:class:`~repro.core.parallel.ParallelCompileService`
— forked once, re-synced per batch via epoch-tagged fingerprint deltas) and
is then committed sequentially, in admission order, through the pipeline's
explicit commit phase.

``remove()`` is serialised through the same queue: a removal closes the wave
being collected, runs only after every earlier submission committed, and
blocks later submissions until the capacity it frees is released.  The
resulting history — placements, failures, cache effects — is therefore
identical to the equivalent serial schedule of the admitted operations, no
matter how the callers interleave.

**Sharded mode.** Handing the service a
:class:`~repro.sharding.coordinator.ShardCoordinator` (or a topology plus
``sharded=True`` / an explicit ``partition=``) replaces the single admission
queue with one **lane per controller shard**: intra-shard submissions queue
and wave inside their own lane, so shards compile and commit concurrently,
and a barrier (remove, update) blocks only the lane of the shard owning the
program.  Submissions whose traffic spans shards skip the lanes entirely
and run through the coordinator's cross-shard two-phase commit, which takes
exactly the touched shards' commit locks — a cross-shard wave is a barrier
for the shards it touches and invisible to the rest.  Its serialisation
point is lock acquisition, not admission order: untouched lanes keep
flowing throughout.

Everything blocking (worker-pool waits, commits) runs on the event loop's
default thread-pool executor, so the loop itself never stalls on a wave.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from functools import partial
from typing import Dict, List, Optional

from repro.core.controller import ClickINC
from repro.core.pipeline import DeployRequest, PipelineReport
from repro.core.stats import CounterMixin, ShardCounters
from repro.exceptions import DeploymentError
from repro.obs import Observability
from repro.obs.metrics import Sample
from repro.synthesis.incremental import SynthesisDelta
from repro.topology.network import NetworkTopology

__all__ = ["INCService", "deadline_report"]


def deadline_report(name: str, detail: str) -> PipelineReport:
    """A failed :class:`PipelineReport` for a deadline-expired submission.

    Deadline expiry is an admission outcome, not a pipeline error, so it is
    reported (``failed_stage="deadline"``) exactly like any other
    per-request failure — never raised — and carries no partial state:
    nothing was compiled or committed on its behalf.
    """
    report = PipelineReport(program_name=name)
    report.succeeded = False
    report.error = detail
    report.failed_stage = "deadline"
    return report


@dataclass
class _Admission:
    """One queued operation: a submission or a barrier.

    Barriers (``remove``, ``update``, ``fail-device``, ``drain-device``,
    ``stop``) close the wave being collected and run alone, after every
    earlier admission committed — so their effects are atomic with respect
    to concurrently admitted submissions.
    """

    kind: str                     # "submit" | "remove" | "update" | ...
    future: "asyncio.Future"
    request: Optional[DeployRequest] = None
    name: Optional[str] = None
    lazy: bool = True
    payload: Optional[Dict[str, object]] = None
    #: absolute ``time.monotonic()`` deadline: a submission still queued
    #: when it passes fails fast (stage ``deadline``) without compiling
    deadline: Optional[float] = None
    #: ``time.monotonic()`` at admission, for the queue-wait histogram
    enqueued_at: float = 0.0


@dataclass
class ServiceStats(CounterMixin):
    """Counters describing the service's batching behaviour.

    Running aggregates only — an always-on service processes an unbounded
    number of waves, so nothing here may grow with the wave count.  Every
    update goes through :meth:`~repro.core.stats.CounterMixin.increment`
    (or the :meth:`record_wave` helper built on it), never through ad-hoc
    attribute arithmetic at the call sites.
    """

    submitted: int = 0
    removed: int = 0
    waves: int = 0
    max_wave: int = 0
    #: waves in which at least one request failed to deploy
    failed_waves: int = 0
    #: rolling updates swapped through the barrier path
    updates: int = 0
    #: programs live-migrated by fail/drain barriers
    migrations: int = 0
    #: cross-shard programs committed through the two-phase commit
    cross_shard_commits: int = 0
    #: cross-shard prepares aborted because a touched shard's allocation
    #: state drifted from the epoch-tagged snapshot placement ran against
    aborted_prepares: int = 0
    #: submissions that expired in the admission queue (deadline passed
    #: before their wave was dispatched)
    deadline_expired: int = 0
    #: cross-shard two-phase commits aborted because the submission's
    #: deadline passed between the speculative phase and the commit wave
    deadline_aborts: int = 0
    #: per-shard activity breakdown: each entry is the owning shard's own
    #: :class:`ShardCounters` bag, aliased in by the coordinator so the
    #: counters are incremented exactly once
    per_shard: Dict[str, ShardCounters] = field(default_factory=dict)

    def record_wave(self, size: int, failures: int = 0) -> None:
        self.increment("waves")
        self.increment("submitted", size)
        if size > self.max_wave:
            self.max_wave = size
        if failures:
            self.increment("failed_waves")

    def summary(self) -> Dict[str, object]:
        summary: Dict[str, object] = {
            "submitted": self.submitted,
            "removed": self.removed,
            "waves": self.waves,
            "max_wave": self.max_wave,
            "mean_wave": self.submitted / self.waves if self.waves else 0.0,
            "failed_waves": self.failed_waves,
            "updates": self.updates,
            "migrations": self.migrations,
            "cross_shard_commits": self.cross_shard_commits,
            "aborted_prepares": self.aborted_prepares,
            "deadline_expired": self.deadline_expired,
            "deadline_aborts": self.deadline_aborts,
        }
        if self.per_shard:
            summary["per_shard"] = {
                shard_id: counters.summary()
                for shard_id, counters in sorted(self.per_shard.items())
            }
        return summary


class INCService:
    """Long-lived asyncio front-end over a :class:`ClickINC` controller.

    Parameters
    ----------
    controller_or_topology:
        An existing :class:`ClickINC` controller to serve (shared pipeline,
        cache and deployed-program registry), or a
        :class:`~repro.topology.network.NetworkTopology` from which the
        service builds — and then owns — a controller.
    workers:
        Process-pool width for the speculative compile waves (``1`` falls
        back to the in-process thread path).
    max_wave:
        Upper bound on submissions batched into one compile wave.
    max_pending:
        Admission-queue capacity; beyond it, ``submit``/``remove`` apply
        backpressure (the awaiting caller blocks until the queue drains).
        ``0`` means unbounded.
    coalesce_s:
        How long the dispatcher waits for more submissions once the queue
        momentarily empties mid-wave — a small window lets concurrent
        producers fill a wave instead of compiling singletons.
    """

    def __init__(self, controller_or_topology, *, workers: int = 2,
                 max_wave: int = 8, max_pending: int = 0,
                 coalesce_s: float = 0.001, sharded: bool = False,
                 partition=None, shard_workers: Optional[int] = None,
                 cross_workers: int = 0,
                 obs: Optional[Observability] = None,
                 **controller_kwargs) -> None:
        from repro.sharding.coordinator import ShardCoordinator

        if obs is not None:
            controller_kwargs.setdefault("obs", obs)
        self.coordinator: Optional[ShardCoordinator] = None
        if isinstance(controller_or_topology, ShardCoordinator):
            if controller_kwargs or sharded or partition is not None:
                raise DeploymentError(
                    "construction keyword arguments are only valid when the "
                    "service builds its own coordinator from a topology"
                )
            self.coordinator = controller_or_topology
            self.controller = self.coordinator.inter
            self._owns_controller = False
        elif isinstance(controller_or_topology, ClickINC):
            if controller_kwargs or sharded or partition is not None:
                raise DeploymentError(
                    "controller keyword arguments are only valid when the "
                    "service builds its own controller from a topology"
                )
            self.controller = controller_or_topology
            self._owns_controller = False
        elif isinstance(controller_or_topology, NetworkTopology):
            if sharded or partition is not None:
                self.coordinator = ShardCoordinator(
                    controller_or_topology, partition,
                    shard_workers=(1 if shard_workers is None
                                   else shard_workers),
                    cross_workers=cross_workers,
                    **controller_kwargs)
                self.controller = self.coordinator.inter
            else:
                self.controller = ClickINC(controller_or_topology,
                                           **controller_kwargs)
            self._owns_controller = True
        else:
            raise DeploymentError(
                "INCService needs a ClickINC controller, a ShardCoordinator "
                "or a NetworkTopology"
            )
        self.workers = max(1, int(workers))
        self.max_wave = max(1, int(max_wave))
        self.max_pending = max(0, int(max_pending))
        self.coalesce_s = max(0.0, float(coalesce_s))
        # sharded mode shares the coordinator's counter bag, so cross-shard
        # commits / aborted prepares / per-shard breakdowns show up in the
        # service-level summary without any double counting
        self.stats = (ServiceStats() if self.coordinator is None
                      else self.coordinator.stats)
        # one hub for the whole stack: adopt the controller's unless the
        # caller handed us a different one explicitly
        self.obs = obs if obs is not None else getattr(
            self.controller, "obs", None) or Observability.default()
        registry = self.obs.registry
        self._queue_wait_hist = registry.histogram(
            "clickinc_admission_wait_seconds",
            "Seconds a submission waited in its admission lane before "
            "its compile wave dispatched", ("lane",))
        registry.register_counters("clickinc_service", self.stats)
        registry.register_collector(self._pool_samples,
                                    key=("service-pool", id(self)))
        self._queue: Optional["asyncio.Queue[_Admission]"] = None
        self._dispatcher: Optional["asyncio.Task"] = None
        #: sharded mode: one admission lane (queue + dispatcher) per shard
        self._lanes: Dict[str, "asyncio.Queue[_Admission]"] = {}
        self._lane_tasks: List["asyncio.Task"] = []
        #: sharded mode: lane of every submission admitted but not yet
        #: committed (``name -> (lane id, admitting future)``), so a
        #: barrier on a name the coordinator does not know yet still
        #: queues behind the submission that will create it
        self._pending_lane: Dict[str, tuple] = {}
        #: completion markers of direct-path operations (cross-shard
        #: submits, device events) that bypass the lanes; drain()/close()
        #: wait on them so the coordinator is never shut down mid-2PC
        self._direct: set = set()
        self._outstanding: set = set()
        self._closed = False

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    async def __aenter__(self) -> "INCService":
        self._ensure_started()
        return self

    async def __aexit__(self, exc_type, exc_value, traceback) -> None:
        await self.close()

    def _ensure_started(self) -> None:
        if self._closed:
            raise DeploymentError("the INC service is closed")
        if self._queue is not None or self._lanes:
            return
        loop = asyncio.get_running_loop()
        if self.coordinator is not None:
            for shard_id in sorted(self.coordinator.shards):
                queue: "asyncio.Queue[_Admission]" = asyncio.Queue(
                    maxsize=self.max_pending
                )
                self._lanes[shard_id] = queue
                self._lane_tasks.append(loop.create_task(
                    self._dispatch_loop(queue, shard_id=shard_id)
                ))
        else:
            self._queue = asyncio.Queue(maxsize=self.max_pending)
            self._dispatcher = loop.create_task(
                self._dispatch_loop(self._queue)
            )

    async def drain(self) -> None:
        """Wait until every operation admitted so far has completed."""
        pending = [f for f in (self._outstanding | self._direct)
                   if not f.done()]
        if pending:
            await asyncio.gather(*pending, return_exceptions=True)

    async def close(self, drain: bool = True) -> None:
        """Stop the service: drain (by default), stop the dispatcher, and —
        when the service owns its controller — release the worker pool.

        Close is idempotent.  Operations already admitted always complete
        (the stop sentinel queues behind them); ``drain=False`` merely skips
        waiting on in-flight futures before enqueueing the sentinel.
        """
        if self._closed:
            return
        self._closed = True
        queues = ([self._queue] if self._queue is not None
                  else list(self._lanes.values()))
        if queues:
            if drain:
                await self.drain()
            loop = asyncio.get_running_loop()
            stops: List["asyncio.Future"] = []
            for queue in queues:
                stop: "asyncio.Future" = loop.create_future()
                await queue.put(_Admission(kind="stop", future=stop))
                stops.append(stop)
            await asyncio.gather(*stops)
            self._dispatcher = None
            self._queue = None
            self._lanes = {}
            self._lane_tasks = []
        # direct-path operations cannot be cancelled (they run on executor
        # threads against the coordinator's shared state), so completing
        # them is the only safe way to close — even with drain=False
        pending_direct = [f for f in self._direct if not f.done()]
        if pending_direct:
            await asyncio.gather(*pending_direct, return_exceptions=True)
        for future in list(self._outstanding):
            if not future.done():
                future.set_exception(
                    DeploymentError("the INC service closed before this "
                                    "operation was dispatched")
                )
        self._outstanding.clear()
        if self._owns_controller:
            if self.coordinator is not None:
                self.coordinator.close()
            else:
                self.controller.close()

    # ------------------------------------------------------------------ #
    # the service API
    # ------------------------------------------------------------------ #
    async def submit(self, request: DeployRequest,
                     deadline: Optional[float] = None) -> PipelineReport:
        """Admit one deployment request; resolves once it has committed.

        The returned :class:`PipelineReport` carries the outcome —
        per-request failures (``succeeded=False``, ``error``,
        ``failed_stage``) are reported, not raised, exactly as in
        ``deploy_many``.

        *deadline* is an absolute ``time.monotonic()`` instant.  A
        submission still queued when it passes fails fast with
        ``failed_stage="deadline"`` — no compile work is spent on it — and
        a cross-shard submission checks it again inside the two-phase
        commit: a deadline passing between the speculative phase and the
        commit wave aborts the prepare (residue-free, nothing was
        committed) instead of committing late.

        In sharded mode the request queues in its shard's own lane; a
        request whose traffic spans shards runs through the coordinator's
        cross-shard two-phase commit instead, serialising against exactly
        the touched shards' commit locks.
        """
        self._ensure_started()
        tracer = self.obs.tracer
        owns_trace = False
        if tracer.enabled and request.trace is None:
            # the gateway starts the trace when the submission came over
            # the wire; a direct service submit roots it here instead, and
            # only the creator finishes it into the completed ring
            request.trace = tracer.start_trace(
                "submit", program=request.resolved_name())
            owns_trace = True
        queue = self._queue
        if self.coordinator is not None:
            touched, route_error = self.coordinator._route(request)
            if route_error is not None:
                self.stats.record_wave(1, failures=1)
                if owns_trace:
                    tracer.finish(request.trace, status="error")
                return route_error
            if len(touched) > 1:
                # register the in-flight cross submission (lane None) so a
                # racing barrier on the same name waits for it instead of
                # failing on a name the coordinator does not know yet
                name = request.resolved_name()
                marker: "asyncio.Future" = (
                    asyncio.get_running_loop().create_future()
                )
                self._pending_lane[name] = (None, marker)
                try:
                    report = await self._run_direct(
                        partial(self.coordinator.deploy, request,
                                deadline=deadline)
                    )
                finally:
                    entry = self._pending_lane.get(name)
                    if entry is not None and entry[1] is marker:
                        del self._pending_lane[name]
                    if not marker.done():
                        marker.set_result(None)
                self.stats.record_wave(
                    1, failures=0 if report.succeeded else 1
                )
                if owns_trace:
                    tracer.finish(request.trace,
                                  status="ok" if report.succeeded
                                  else "error")
                return report
            queue = self._lanes[touched[0]]
        admission = self._admit(_Admission(
            kind="submit",
            future=asyncio.get_running_loop().create_future(),
            request=request,
            deadline=deadline,
            enqueued_at=time.monotonic(),
        ))
        if owns_trace:
            admission.future.add_done_callback(
                self._trace_finisher(request.trace))
        if self.coordinator is not None:
            name = request.resolved_name()
            token = admission.future
            self._pending_lane[name] = (touched[0], token)

            def clear_pending(_future, name=name, token=token):
                # only the admission that owns the entry may remove it: an
                # earlier same-name submission completing must not strip a
                # later one's lane mapping
                entry = self._pending_lane.get(name)
                if entry is not None and entry[1] is token:
                    del self._pending_lane[name]

            admission.future.add_done_callback(clear_pending)
        await queue.put(admission)
        return await admission.future

    async def remove(self, name: str, lazy: bool = True) -> SynthesisDelta:
        """Admit a removal; resolves once the resources are released.

        The removal is serialised through the commit phase: it runs after
        every submission admitted before it has committed, and before any
        admitted after it — so racing ``submit``/``remove`` histories stay
        identical to the equivalent serial schedule.  Removing an unknown
        (or not-yet-committed, per admission order) program raises
        :class:`DeploymentError`.

        In sharded mode the removal barriers only the owning shard's lane;
        cross-shard programs release under the touched shards' commit locks
        without blocking any lane.
        """
        await self._await_pending_cross(name)
        queue = self._barrier_queue(name)
        if queue is None:
            return await self._run_direct(
                partial(self.coordinator.remove, name, lazy=lazy)
            )
        admission = self._admit(_Admission(
            kind="remove",
            future=asyncio.get_running_loop().create_future(),
            name=name,
            lazy=lazy,
        ))
        await queue.put(admission)
        return await admission.future

    async def update(self, name: str, **kwargs) -> PipelineReport:
        """Admit a rolling program update; resolves once the swap committed.

        Keyword arguments are those of :meth:`ClickINC.update_program
        <repro.core.controller.ClickINC.update_program>` (``source`` /
        ``profile`` / ``program`` plus compile options).  The update is a
        wave barrier: it runs after every submission admitted before it has
        committed and before anything admitted after it, so concurrent
        ``submit``/``remove`` callers observe either the old version or the
        new one — never an interleaving.
        """
        await self._await_pending_cross(name)
        queue = self._barrier_queue(name)
        if queue is None:
            return await self._run_direct(
                partial(self.coordinator.update, name, **kwargs)
            )
        admission = self._admit(_Admission(
            kind="update",
            future=asyncio.get_running_loop().create_future(),
            name=name,
            payload=dict(kwargs),
        ))
        await queue.put(admission)
        return await admission.future

    async def fail_device(self, name: str):
        """Admit a device failure; resolves with the migration report.

        Runs as a wave barrier through the controller's
        :class:`~repro.runtime.manager.RuntimeManager`: the device is marked
        down and every program whose committed plan occupied it is
        live-migrated (or everything rolls back if one cannot be re-placed).

        In sharded mode the event routes through the coordinator: only the
        shards that can see the device do migration work (under their
        locks); shard migrations that cannot re-place inside their view
        escalate to the coordinator's full-fabric controller.
        """
        self._ensure_started()
        if self.coordinator is not None:
            # the coordinator counts the migrations in the shared stats bag
            return await self._run_direct(
                partial(self.coordinator.fail_device, name)
            )
        admission = self._admit(_Admission(
            kind="fail-device",
            future=asyncio.get_running_loop().create_future(),
            name=name,
        ))
        await self._queue.put(admission)
        return await admission.future

    async def drain_device(self, name: str):
        """Admit a maintenance drain; like :meth:`fail_device` but the
        drained device's register/table state is carried to the new
        placement."""
        self._ensure_started()
        if self.coordinator is not None:
            return await self._run_direct(
                partial(self.coordinator.drain_device, name)
            )
        admission = self._admit(_Admission(
            kind="drain-device",
            future=asyncio.get_running_loop().create_future(),
            name=name,
        ))
        await self._queue.put(admission)
        return await admission.future

    def _trace_finisher(self, ctx):
        """A future callback closing a service-rooted trace."""
        def finish(future: "asyncio.Future") -> None:
            status = "error"
            if not future.cancelled() and future.exception() is None:
                report = future.result()
                status = ("ok" if getattr(report, "succeeded", False)
                          else "error")
            self.obs.tracer.finish(ctx, status=status)
        return finish

    def _pool_samples(self):
        """Render-time gauge/counter samples of the worker-pool vitals."""
        service = self.controller.pipeline.parallel
        if service is None:
            return []
        return [
            Sample("clickinc_pool_generation", {}, service.pool_generation,
                   "gauge", "Worker pools forked over the service lifetime"),
            Sample("clickinc_pool_batches_served_total", {},
                   service.batches_served, "counter",
                   "Speculative compile batches served by the pool"),
            Sample("clickinc_pool_inline_fallbacks_total", {},
                   service.inline_fallbacks, "counter",
                   "Requests that fell back to the in-process compile path"),
        ]

    def _admit(self, admission: _Admission) -> _Admission:
        self._ensure_started()
        self._outstanding.add(admission.future)
        admission.future.add_done_callback(self._outstanding.discard)
        return admission

    def _barrier_queue(self, name: str) -> Optional["asyncio.Queue"]:
        """The lane a barrier on *name* must queue in, or None for the
        coordinator's direct (lock-serialised) path.

        Unsharded services always use the single queue.  Sharded services
        route a barrier to the lane of the shard owning the program — or,
        for a name whose submission is admitted but not yet committed, the
        lane that submission went to, so the barrier queues behind it
        exactly as in the unsharded serial schedule.  Cross-shard-owned
        and unknown programs take the direct path (the coordinator raises
        for unknown names).
        """
        self._ensure_started()
        if self.coordinator is None:
            return self._queue
        owner = self.coordinator.owner_of(name)
        if owner in self._lanes:
            return self._lanes[owner]
        pending = self._pending_lane.get(name)
        if pending is not None and pending[0] in self._lanes:
            return self._lanes[pending[0]]
        return None

    async def _await_pending_cross(self, name: str) -> None:
        """Wait out an in-flight cross-shard submission of *name*.

        Cross submissions bypass the lanes, so a barrier cannot queue
        behind them; waiting for the submission's completion marker
        restores the serial schedule (submit committed, then the barrier).
        """
        if self.coordinator is None:
            return
        entry = self._pending_lane.get(name)
        if entry is not None and entry[0] is None:
            await asyncio.shield(entry[1])

    async def _run_direct(self, fn):
        """Run a coordinator operation on the executor, tracked for drain.

        Direct-path operations bypass the admission lanes (they serialise
        on the coordinator's locks instead), so they leave a completion
        marker that :meth:`drain` and :meth:`close` wait on — the
        coordinator must never be shut down while a 2PC or migration is
        still running on an executor thread.  The coordinator does its own
        counting, so no service-side stats are touched here.
        """
        loop = asyncio.get_running_loop()
        marker: "asyncio.Future" = loop.create_future()
        self._direct.add(marker)
        marker.add_done_callback(self._direct.discard)
        try:
            return await loop.run_in_executor(None, fn)
        finally:
            if not marker.done():
                marker.set_result(None)

    def lane_of(self, request: DeployRequest) -> Optional[str]:
        """The admission-lane key *request* would queue in.

        The gateway's weighted-fair scheduler maps tenant weight onto the
        service's admission lanes, so it needs the same routing decision the
        service itself makes: the owning shard's id in sharded mode,
        ``"default"`` for the unsharded single queue, and ``"cross"`` for a
        submission whose traffic spans shards (those bypass the lanes and
        serialise on the coordinator's locks instead).  Returns ``None``
        when the request cannot be routed at all (unknown host groups) —
        submitting it would fail with the same routing error.
        """
        if self.coordinator is None:
            return "default"
        touched, route_error = self.coordinator._route(request)
        if route_error is not None:
            return None
        return touched[0] if len(touched) == 1 else "cross"

    def lane_keys(self) -> List[str]:
        """Every lane key :meth:`lane_of` can return (sans ``None``)."""
        if self.coordinator is None:
            return ["default"]
        return sorted(self.coordinator.shards) + ["cross"]

    def deployed_programs(self) -> List[str]:
        if self.coordinator is not None:
            return self.coordinator.deployed_programs()
        return self.controller.deployed_programs()

    def service_summary(self) -> Dict[str, object]:
        """Batching counters, pool vitals, and runtime-layer activity."""
        summary = self.stats.summary()
        service = self.controller.pipeline.parallel
        if service is not None:
            summary["pool_generation"] = service.pool_generation
            summary["batches_served"] = service.batches_served
            summary["inline_fallbacks"] = service.inline_fallbacks
        memo = getattr(self.controller.placer, "memo", None)
        if memo is not None and hasattr(memo, "counters"):
            # the shared placement memo's hit/miss/delta-bytes counters; in
            # sharded mode ``self.controller`` is the coordinator's
            # full-fabric controller, whose memo is the one shared with
            # every shard, so this covers both deployments.  Flows into the
            # gateway's /v1/status via gateway_summary().
            summary["memo"] = memo.summary()
        runtime = getattr(self.controller, "_runtime", None)
        if runtime is not None:
            summary["runtime"] = runtime.runtime_summary()
        if self.coordinator is not None:
            summary["coordinator"] = self.coordinator.coordinator_summary()
        return summary

    # ------------------------------------------------------------------ #
    # dispatcher
    # ------------------------------------------------------------------ #
    async def _dispatch_loop(self, queue: "asyncio.Queue[_Admission]",
                             shard_id: Optional[str] = None) -> None:
        """Drain one admission queue into compile waves, forever.

        Contiguous submissions coalesce into one wave (bounded by
        ``max_wave``); a removal — or the stop sentinel — closes the wave
        being collected and runs after it commits.  Unsharded services run
        one instance over the single queue; sharded services run one per
        shard lane (*shard_id* names the shard the lane serves).
        """
        loop = asyncio.get_running_loop()
        while True:
            admission = await queue.get()
            barrier: Optional[_Admission] = None
            wave: List[_Admission] = []
            if admission.kind == "submit":
                wave.append(admission)
                while len(wave) < self.max_wave:
                    if queue.empty() and self.coalesce_s > 0.0:
                        # momentary lull: give concurrent producers one
                        # window to extend the wave before compiling it
                        try:
                            nxt = await asyncio.wait_for(
                                queue.get(), timeout=self.coalesce_s
                            )
                        except asyncio.TimeoutError:
                            break
                    else:
                        try:
                            nxt = queue.get_nowait()
                        except asyncio.QueueEmpty:
                            break
                    if nxt.kind == "submit":
                        wave.append(nxt)
                    else:
                        barrier = nxt
                        break
            else:
                barrier = admission

            if wave:
                await self._run_wave(loop, wave, shard_id=shard_id)
            if barrier is not None:
                if barrier.kind == "stop":
                    barrier.future.set_result(None)
                    return
                await self._run_barrier(loop, barrier)

    async def _run_wave(self, loop, wave: List[_Admission],
                        shard_id: Optional[str] = None) -> None:
        # expired submissions fail before any compile work is spent on them;
        # the rest of the wave proceeds untouched
        live: List[_Admission] = []
        expired = 0
        now = time.monotonic()
        lane = shard_id if shard_id is not None else "default"
        tracer = self.obs.tracer
        for admission in wave:
            if admission.deadline is not None and now > admission.deadline:
                expired += 1
                self.stats.increment("deadline_expired")
                self.obs.events.emit(
                    "deadline_expired", where="admission-queue", lane=lane,
                    program=admission.request.resolved_name())
                if not admission.future.done():
                    admission.future.set_result(
                        deadline_report(admission.request.resolved_name(),
                                        "the submission's deadline passed "
                                        "while it was queued for admission")
                    )
            else:
                if admission.enqueued_at:
                    waited = now - admission.enqueued_at
                    self._queue_wait_hist.labels(lane).observe(waited)
                    tracer.emit(admission.request.trace, "queue.wait",
                                waited, lane=lane)
                live.append(admission)
        if not live:
            if expired:
                self.stats.record_wave(expired, failures=expired)
            return
        total, wave = len(wave), live
        requests = [admission.request for admission in wave]
        if shard_id is not None:
            # shard lane: the wave runs on the shard's own pipeline and
            # worker pool, holding only that shard's commit lock
            run = partial(self.coordinator.deploy_wave, shard_id, requests)
        else:
            run = partial(self.controller.deploy_many, requests,
                          workers=self.workers)
        wave_start = time.perf_counter()
        try:
            reports = await loop.run_in_executor(None, run)
        except Exception as exc:  # defensive: deploy_many captures per-request
            for admission in wave:
                if not admission.future.done():
                    admission.future.set_exception(exc)
            return
        wave_s = time.perf_counter() - wave_start
        for admission in wave:
            tracer.emit(admission.request.trace, "wave.execute", wave_s,
                        lane=lane, wave_size=len(wave))
        self.stats.record_wave(
            total,
            failures=expired + sum(1 for report in reports
                                   if not report.succeeded),
        )
        for admission, report in zip(wave, reports):
            if not admission.future.done():
                admission.future.set_result(report)

    async def _run_barrier(self, loop, admission: _Admission) -> None:
        """Run one barrier operation (remove/update/fail/drain) serially."""
        try:
            if admission.kind == "remove":
                if self.coordinator is not None:
                    run = partial(self.coordinator.remove, admission.name,
                                  lazy=admission.lazy)
                else:
                    run = partial(self.controller.remove, admission.name,
                                  lazy=admission.lazy)
                result = await loop.run_in_executor(None, run)
                if self.coordinator is None:
                    self.stats.increment("removed")
            elif admission.kind == "update":
                # routed through the runtime manager so its update counters
                # stay consistent with the fail/drain accounting
                if self.coordinator is not None:
                    run = partial(self.coordinator.update, admission.name,
                                  **(admission.payload or {}))
                else:
                    run = partial(self.controller.runtime().update_program,
                                  admission.name,
                                  **(admission.payload or {}))
                result = await loop.run_in_executor(None, run)
                if self.coordinator is None:
                    self.stats.increment("updates")
            elif admission.kind == "fail-device":
                result = await loop.run_in_executor(
                    None,
                    partial(self.controller.runtime().fail_device,
                            admission.name),
                )
                self.stats.increment("migrations", len(result.migrated))
            elif admission.kind == "drain-device":
                result = await loop.run_in_executor(
                    None,
                    partial(self.controller.runtime().drain_device,
                            admission.name),
                )
                self.stats.increment("migrations", len(result.migrated))
            else:  # pragma: no cover - defensive
                raise DeploymentError(
                    f"unknown admission kind {admission.kind!r}"
                )
        except Exception as exc:
            if not admission.future.done():
                admission.future.set_exception(exc)
            return
        if not admission.future.done():
            admission.future.set_result(result)
