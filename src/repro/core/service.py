"""The asyncio service runtime: ClickINC as an always-on service.

The paper's pitch is in-network computing **as a service**: many tenants
continuously submit, update and remove programs against one shared network.
:class:`INCService` is that front-end — an asyncio API over the staged
pipeline::

    async with INCService(topology, workers=4) as svc:
        report = await svc.submit(request)        # deploy
        ...
        await svc.remove(report.program_name)     # undeploy
        await svc.drain()                         # quiesce

Requests enter an **admission queue** and are drained by a single dispatcher
task into *speculative compile waves*: each wave of contiguous submissions
runs the pure compile + speculative placement phase on the pipeline's
persistent process pool (:class:`~repro.core.parallel.ParallelCompileService`
— forked once, re-synced per batch via epoch-tagged fingerprint deltas) and
is then committed sequentially, in admission order, through the pipeline's
explicit commit phase.

``remove()`` is serialised through the same queue: a removal closes the wave
being collected, runs only after every earlier submission committed, and
blocks later submissions until the capacity it frees is released.  The
resulting history — placements, failures, cache effects — is therefore
identical to the equivalent serial schedule of the admitted operations, no
matter how the callers interleave.

Everything blocking (worker-pool waits, commits) runs on the event loop's
default thread-pool executor, so the loop itself never stalls on a wave.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from functools import partial
from typing import Dict, List, Optional

from repro.core.controller import ClickINC
from repro.core.pipeline import DeployRequest, PipelineReport
from repro.exceptions import DeploymentError
from repro.synthesis.incremental import SynthesisDelta
from repro.topology.network import NetworkTopology

__all__ = ["INCService"]


@dataclass
class _Admission:
    """One queued operation: a submission or a barrier.

    Barriers (``remove``, ``update``, ``fail-device``, ``drain-device``,
    ``stop``) close the wave being collected and run alone, after every
    earlier admission committed — so their effects are atomic with respect
    to concurrently admitted submissions.
    """

    kind: str                     # "submit" | "remove" | "update" | ...
    future: "asyncio.Future"
    request: Optional[DeployRequest] = None
    name: Optional[str] = None
    lazy: bool = True
    payload: Optional[Dict[str, object]] = None


@dataclass
class ServiceStats:
    """Counters describing the service's batching behaviour.

    Running aggregates only — an always-on service processes an unbounded
    number of waves, so nothing here may grow with the wave count.
    """

    submitted: int = 0
    removed: int = 0
    waves: int = 0
    max_wave: int = 0
    #: waves in which at least one request failed to deploy
    failed_waves: int = 0
    #: rolling updates swapped through the barrier path
    updates: int = 0
    #: programs live-migrated by fail/drain barriers
    migrations: int = 0

    def record_wave(self, size: int, failures: int = 0) -> None:
        self.waves += 1
        self.submitted += size
        if size > self.max_wave:
            self.max_wave = size
        if failures:
            self.failed_waves += 1

    def summary(self) -> Dict[str, object]:
        return {
            "submitted": self.submitted,
            "removed": self.removed,
            "waves": self.waves,
            "max_wave": self.max_wave,
            "mean_wave": self.submitted / self.waves if self.waves else 0.0,
            "failed_waves": self.failed_waves,
            "updates": self.updates,
            "migrations": self.migrations,
        }


class INCService:
    """Long-lived asyncio front-end over a :class:`ClickINC` controller.

    Parameters
    ----------
    controller_or_topology:
        An existing :class:`ClickINC` controller to serve (shared pipeline,
        cache and deployed-program registry), or a
        :class:`~repro.topology.network.NetworkTopology` from which the
        service builds — and then owns — a controller.
    workers:
        Process-pool width for the speculative compile waves (``1`` falls
        back to the in-process thread path).
    max_wave:
        Upper bound on submissions batched into one compile wave.
    max_pending:
        Admission-queue capacity; beyond it, ``submit``/``remove`` apply
        backpressure (the awaiting caller blocks until the queue drains).
        ``0`` means unbounded.
    coalesce_s:
        How long the dispatcher waits for more submissions once the queue
        momentarily empties mid-wave — a small window lets concurrent
        producers fill a wave instead of compiling singletons.
    """

    def __init__(self, controller_or_topology, *, workers: int = 2,
                 max_wave: int = 8, max_pending: int = 0,
                 coalesce_s: float = 0.001, **controller_kwargs) -> None:
        if isinstance(controller_or_topology, ClickINC):
            if controller_kwargs:
                raise DeploymentError(
                    "controller keyword arguments are only valid when the "
                    "service builds its own controller from a topology"
                )
            self.controller = controller_or_topology
            self._owns_controller = False
        elif isinstance(controller_or_topology, NetworkTopology):
            self.controller = ClickINC(controller_or_topology,
                                       **controller_kwargs)
            self._owns_controller = True
        else:
            raise DeploymentError(
                "INCService needs a ClickINC controller or a NetworkTopology"
            )
        self.workers = max(1, int(workers))
        self.max_wave = max(1, int(max_wave))
        self.max_pending = max(0, int(max_pending))
        self.coalesce_s = max(0.0, float(coalesce_s))
        self.stats = ServiceStats()
        self._queue: Optional["asyncio.Queue[_Admission]"] = None
        self._dispatcher: Optional["asyncio.Task"] = None
        self._outstanding: set = set()
        self._closed = False

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    async def __aenter__(self) -> "INCService":
        self._ensure_started()
        return self

    async def __aexit__(self, exc_type, exc_value, traceback) -> None:
        await self.close()

    def _ensure_started(self) -> None:
        if self._closed:
            raise DeploymentError("the INC service is closed")
        if self._queue is None:
            self._queue = asyncio.Queue(maxsize=self.max_pending)
            self._dispatcher = asyncio.get_running_loop().create_task(
                self._dispatch_loop()
            )

    async def drain(self) -> None:
        """Wait until every operation admitted so far has completed."""
        pending = [f for f in self._outstanding if not f.done()]
        if pending:
            await asyncio.gather(*pending, return_exceptions=True)

    async def close(self, drain: bool = True) -> None:
        """Stop the service: drain (by default), stop the dispatcher, and —
        when the service owns its controller — release the worker pool.

        Close is idempotent.  Operations already admitted always complete
        (the stop sentinel queues behind them); ``drain=False`` merely skips
        waiting on in-flight futures before enqueueing the sentinel.
        """
        if self._closed:
            return
        self._closed = True
        if self._queue is not None:
            if drain:
                await self.drain()
            stop: "asyncio.Future" = asyncio.get_running_loop().create_future()
            await self._queue.put(_Admission(kind="stop", future=stop))
            await stop
            self._dispatcher = None
            self._queue = None
        for future in list(self._outstanding):
            if not future.done():
                future.set_exception(
                    DeploymentError("the INC service closed before this "
                                    "operation was dispatched")
                )
        self._outstanding.clear()
        if self._owns_controller:
            self.controller.close()

    # ------------------------------------------------------------------ #
    # the service API
    # ------------------------------------------------------------------ #
    async def submit(self, request: DeployRequest) -> PipelineReport:
        """Admit one deployment request; resolves once it has committed.

        The returned :class:`PipelineReport` carries the outcome —
        per-request failures (``succeeded=False``, ``error``,
        ``failed_stage``) are reported, not raised, exactly as in
        ``deploy_many``.
        """
        admission = self._admit(_Admission(
            kind="submit",
            future=asyncio.get_running_loop().create_future(),
            request=request,
        ))
        await self._queue.put(admission)
        return await admission.future

    async def remove(self, name: str, lazy: bool = True) -> SynthesisDelta:
        """Admit a removal; resolves once the resources are released.

        The removal is serialised through the commit phase: it runs after
        every submission admitted before it has committed, and before any
        admitted after it — so racing ``submit``/``remove`` histories stay
        identical to the equivalent serial schedule.  Removing an unknown
        (or not-yet-committed, per admission order) program raises
        :class:`DeploymentError`.
        """
        admission = self._admit(_Admission(
            kind="remove",
            future=asyncio.get_running_loop().create_future(),
            name=name,
            lazy=lazy,
        ))
        await self._queue.put(admission)
        return await admission.future

    async def update(self, name: str, **kwargs) -> PipelineReport:
        """Admit a rolling program update; resolves once the swap committed.

        Keyword arguments are those of :meth:`ClickINC.update_program
        <repro.core.controller.ClickINC.update_program>` (``source`` /
        ``profile`` / ``program`` plus compile options).  The update is a
        wave barrier: it runs after every submission admitted before it has
        committed and before anything admitted after it, so concurrent
        ``submit``/``remove`` callers observe either the old version or the
        new one — never an interleaving.
        """
        admission = self._admit(_Admission(
            kind="update",
            future=asyncio.get_running_loop().create_future(),
            name=name,
            payload=dict(kwargs),
        ))
        await self._queue.put(admission)
        return await admission.future

    async def fail_device(self, name: str):
        """Admit a device failure; resolves with the migration report.

        Runs as a wave barrier through the controller's
        :class:`~repro.runtime.manager.RuntimeManager`: the device is marked
        down and every program whose committed plan occupied it is
        live-migrated (or everything rolls back if one cannot be re-placed).
        """
        admission = self._admit(_Admission(
            kind="fail-device",
            future=asyncio.get_running_loop().create_future(),
            name=name,
        ))
        await self._queue.put(admission)
        return await admission.future

    async def drain_device(self, name: str):
        """Admit a maintenance drain; like :meth:`fail_device` but the
        drained device's register/table state is carried to the new
        placement."""
        admission = self._admit(_Admission(
            kind="drain-device",
            future=asyncio.get_running_loop().create_future(),
            name=name,
        ))
        await self._queue.put(admission)
        return await admission.future

    def _admit(self, admission: _Admission) -> _Admission:
        self._ensure_started()
        self._outstanding.add(admission.future)
        admission.future.add_done_callback(self._outstanding.discard)
        return admission

    def deployed_programs(self) -> List[str]:
        return self.controller.deployed_programs()

    def service_summary(self) -> Dict[str, object]:
        """Batching counters, pool vitals, and runtime-layer activity."""
        summary = self.stats.summary()
        service = self.controller.pipeline.parallel
        if service is not None:
            summary["pool_generation"] = service.pool_generation
            summary["batches_served"] = service.batches_served
            summary["inline_fallbacks"] = service.inline_fallbacks
        runtime = getattr(self.controller, "_runtime", None)
        if runtime is not None:
            summary["runtime"] = runtime.runtime_summary()
        return summary

    # ------------------------------------------------------------------ #
    # dispatcher
    # ------------------------------------------------------------------ #
    async def _dispatch_loop(self) -> None:
        """Drain the admission queue into compile waves, forever.

        Contiguous submissions coalesce into one wave (bounded by
        ``max_wave``); a removal — or the stop sentinel — closes the wave
        being collected and runs after it commits.
        """
        queue = self._queue
        loop = asyncio.get_running_loop()
        while True:
            admission = await queue.get()
            barrier: Optional[_Admission] = None
            wave: List[_Admission] = []
            if admission.kind == "submit":
                wave.append(admission)
                while len(wave) < self.max_wave:
                    if queue.empty() and self.coalesce_s > 0.0:
                        # momentary lull: give concurrent producers one
                        # window to extend the wave before compiling it
                        try:
                            nxt = await asyncio.wait_for(
                                queue.get(), timeout=self.coalesce_s
                            )
                        except asyncio.TimeoutError:
                            break
                    else:
                        try:
                            nxt = queue.get_nowait()
                        except asyncio.QueueEmpty:
                            break
                    if nxt.kind == "submit":
                        wave.append(nxt)
                    else:
                        barrier = nxt
                        break
            else:
                barrier = admission

            if wave:
                await self._run_wave(loop, wave)
            if barrier is not None:
                if barrier.kind == "stop":
                    barrier.future.set_result(None)
                    return
                await self._run_barrier(loop, barrier)

    async def _run_wave(self, loop, wave: List[_Admission]) -> None:
        requests = [admission.request for admission in wave]
        try:
            reports = await loop.run_in_executor(
                None,
                partial(self.controller.deploy_many, requests,
                        workers=self.workers),
            )
        except Exception as exc:  # defensive: deploy_many captures per-request
            for admission in wave:
                if not admission.future.done():
                    admission.future.set_exception(exc)
            return
        self.stats.record_wave(
            len(wave),
            failures=sum(1 for report in reports if not report.succeeded),
        )
        for admission, report in zip(wave, reports):
            if not admission.future.done():
                admission.future.set_result(report)

    async def _run_barrier(self, loop, admission: _Admission) -> None:
        """Run one barrier operation (remove/update/fail/drain) serially."""
        try:
            if admission.kind == "remove":
                result = await loop.run_in_executor(
                    None,
                    partial(self.controller.remove, admission.name,
                            lazy=admission.lazy),
                )
                self.stats.removed += 1
            elif admission.kind == "update":
                # routed through the runtime manager so its update counters
                # stay consistent with the fail/drain accounting
                result = await loop.run_in_executor(
                    None,
                    partial(self.controller.runtime().update_program,
                            admission.name, **(admission.payload or {})),
                )
                self.stats.updates += 1
            elif admission.kind == "fail-device":
                result = await loop.run_in_executor(
                    None,
                    partial(self.controller.runtime().fail_device,
                            admission.name),
                )
                self.stats.migrations += len(result.migrated)
            elif admission.kind == "drain-device":
                result = await loop.run_in_executor(
                    None,
                    partial(self.controller.runtime().drain_device,
                            admission.name),
                )
                self.stats.migrations += len(result.migrated)
            else:  # pragma: no cover - defensive
                raise DeploymentError(
                    f"unknown admission kind {admission.kind!r}"
                )
        except Exception as exc:
            if not admission.future.done():
                admission.future.set_exception(exc)
            return
        if not admission.future.done():
            admission.future.set_result(result)
