"""Shared counter plumbing for the service, runtime and pool statistics.

Every long-lived layer keeps a small dataclass of running integer counters
(:class:`~repro.core.service.ServiceStats`,
:class:`~repro.runtime.manager.RuntimeStats`, the pool counters of
:class:`~repro.core.parallel.ParallelCompileService`).  They all update
through :meth:`CounterMixin.increment` — one internal helper instead of
ad-hoc ``stats.attr += 1`` scattered through the call sites — so a typo'd
counter name fails loudly instead of silently creating a new attribute,
and per-shard breakdowns (:class:`ShardCounters`) aggregate uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

__all__ = ["CounterMixin", "ShardCounters", "TenantCounters"]


class CounterMixin:
    """Increment declared integer counters by name, loudly.

    Mixed into the stats dataclasses: ``stats.increment("removed")`` replaces
    ``stats.removed += 1``.  Only pre-declared int fields may be bumped —
    incrementing an unknown or non-integer attribute raises, which is the
    point: a silent ``+= 1`` on a mistyped name would mint a new attribute
    and the counter would never show up in any summary.
    """

    def increment(self, counter: str, by: int = 1) -> int:
        current = getattr(self, counter, None)
        if not isinstance(current, int) or isinstance(current, bool):
            raise AttributeError(
                f"{type(self).__name__} has no integer counter {counter!r}"
            )
        updated = current + int(by)
        setattr(self, counter, updated)
        return updated


@dataclass
class ShardCounters(CounterMixin):
    """Per-shard controller activity, aggregated by the coordinator/service.

    One instance per shard (plus one for the cross-shard coordinator role):
    deployments and removals the shard committed by itself, cross-shard
    commits it participated in, and prepares it voted to abort.
    """

    deploys: int = 0
    removed: int = 0
    #: cross-shard programs committed through a two-phase commit this shard
    #: participated in (for the coordinator's own counters: drove)
    cross_shard_commits: int = 0
    #: cross-shard prepares aborted because this shard's allocation state
    #: drifted from the epoch-tagged snapshot the plan was placed against
    aborted_prepares: int = 0
    #: programs migrated off this shard's devices by runtime events
    migrations: int = 0

    def summary(self) -> Dict[str, int]:
        return {
            "deploys": self.deploys,
            "removed": self.removed,
            "cross_shard_commits": self.cross_shard_commits,
            "aborted_prepares": self.aborted_prepares,
            "migrations": self.migrations,
        }


@dataclass
class TenantCounters(CounterMixin):
    """Per-tenant activity at the gateway, one bag per authenticated tenant.

    The gateway (:mod:`repro.gateway`) maintains one instance per tenant and
    surfaces them through ``GET /v1/status``; every admission decision —
    committed, rejected for quota, pushed back, shed, expired — lands in
    exactly one of these counters, so a tenant's submitted total always
    equals the sum of its outcomes plus what is still queued or in flight.
    """

    #: submissions accepted into the admission scheduler
    submitted: int = 0
    #: submissions that committed a deployment
    committed: int = 0
    #: submissions whose deployment failed in the pipeline (compile,
    #: placement, resources) after being scheduled
    failed: int = 0
    #: submissions rejected before queueing: a per-tenant quota was full
    rejected_quota: int = 0
    #: submissions rejected with 429 + Retry-After: the lane's bounded
    #: admission queue was saturated and the tenant had no shedding claim
    rejected_backpressure: int = 0
    #: queued (never committed) submissions shed to admit heavier tenants
    shed: int = 0
    #: submissions that expired (deadline passed) before or during commit
    deadline_expired: int = 0
    #: programs removed by the tenant
    removed: int = 0

    def summary(self) -> Dict[str, int]:
        return {
            "submitted": self.submitted,
            "committed": self.committed,
            "failed": self.failed,
            "rejected_quota": self.rejected_quota,
            "rejected_backpressure": self.rejected_backpressure,
            "shed": self.shed,
            "deadline_expired": self.deadline_expired,
            "removed": self.removed,
        }
