"""Shared counter plumbing for the service, runtime and pool statistics.

Every long-lived layer keeps a small dataclass of running integer counters
(:class:`~repro.core.service.ServiceStats`,
:class:`~repro.runtime.manager.RuntimeStats`, the pool counters of
:class:`~repro.core.parallel.ParallelCompileService`).  They all update
through :meth:`CounterMixin.increment` — one internal helper instead of
ad-hoc ``stats.attr += 1`` scattered through the call sites — so a typo'd
counter name fails loudly instead of silently creating a new attribute,
and per-shard breakdowns (:class:`ShardCounters`) aggregate uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, is_dataclass
from typing import Dict

__all__ = [
    "CounterMixin",
    "DataplaneStats",
    "EngineCounters",
    "MemoCounters",
    "ShardCounters",
    "TenantCounters",
]


class CounterMixin:
    """Increment declared integer counters by name, loudly.

    Mixed into the stats dataclasses: ``stats.increment("removed")`` replaces
    ``stats.removed += 1``.  Only pre-declared int fields may be bumped —
    incrementing an unknown or non-integer attribute raises, which is the
    point: a silent ``+= 1`` on a mistyped name would mint a new attribute
    and the counter would never show up in any summary.
    """

    def increment(self, counter: str, by: int = 1) -> int:
        current = getattr(self, counter, None)
        if not isinstance(current, int) or isinstance(current, bool):
            raise AttributeError(
                f"{type(self).__name__} has no integer counter {counter!r}"
            )
        updated = current + int(by)
        setattr(self, counter, updated)
        return updated

    def counters(self) -> Dict[str, int]:
        """Every declared integer counter, in declaration order.

        This is the single enumeration the summaries *and* the metrics
        registry (:meth:`repro.obs.metrics.MetricsRegistry.register_counters`)
        read, so the wire views cannot drift from ``/v1/metrics``: a new
        counter field shows up everywhere at once.
        """
        if is_dataclass(self):
            names = [f.name for f in fields(self)]
        else:
            names = list(vars(self))
        out: Dict[str, int] = {}
        for name in names:
            value = getattr(self, name)
            if isinstance(value, int) and not isinstance(value, bool):
                out[name] = value
        return out

    def summary(self) -> Dict[str, int]:
        return self.counters()


@dataclass
class ShardCounters(CounterMixin):
    """Per-shard controller activity, aggregated by the coordinator/service.

    One instance per shard (plus one for the cross-shard coordinator role):
    deployments and removals the shard committed by itself, cross-shard
    commits it participated in, and prepares it voted to abort.
    """

    deploys: int = 0
    removed: int = 0
    #: cross-shard programs committed through a two-phase commit this shard
    #: participated in (for the coordinator's own counters: drove)
    cross_shard_commits: int = 0
    #: cross-shard prepares aborted because this shard's allocation state
    #: drifted from the epoch-tagged snapshot the plan was placed against
    aborted_prepares: int = 0
    #: programs migrated off this shard's devices by runtime events
    migrations: int = 0



@dataclass
class MemoCounters(CounterMixin):
    """Activity of one :class:`~repro.placement.memo.SharedPlacementMemo`.

    Tracks where lookups were served from (in-process front, shared backing
    store, or nowhere), the delta-sync traffic exchanged with pool workers,
    and the persistence life-cycle.  Surfaced through
    ``SharedPlacementMemo.summary()`` into the service/gateway status
    responses.
    """

    #: lookups served by the in-process LRU front
    hits: int = 0
    #: front misses served by the shared backing store (read-through)
    shared_hits: int = 0
    #: lookups that missed everywhere (the caller derives and stores)
    misses: int = 0
    #: entries merged in from delta/snapshot blobs
    delta_entries_in: int = 0
    #: bytes of delta/snapshot blobs merged in
    delta_bytes_in: int = 0
    #: entries exported into delta/snapshot blobs
    delta_entries_out: int = 0
    #: bytes of delta/snapshot blobs exported
    delta_bytes_out: int = 0
    #: delta entries skipped because the key was already present — with a
    #: worker pool, exactly the duplicated work that cross-process
    #: single-flight cannot prevent
    duplicate_entries: int = 0
    #: entries admitted from a persisted file on restore
    restored_entries: int = 0
    #: entries written out by save()
    persisted_entries: int = 0
    #: restore attempts rejected wholesale (unreadable/corrupt file, format
    #: or topology-signature mismatch) — each one is a cold-solve fallback
    restore_rejected: int = 0
    #: memo-served sub-tree tables rejected by the DPPlacer's live
    #: allocation-state guard (should stay 0; see StaleMemoError)
    stale_rejections: int = 0



@dataclass
class DataplaneStats(CounterMixin):
    """Activity of the vectorized batch data plane, one bag per emulator.

    Maintained by :class:`~repro.emulator.engine.BatchRunner` (and the
    compiled kernels it calls); surfaced through
    ``TrafficEngine.bind_metrics`` as the ``clickinc_dataplane_*`` counter
    family.  The vectorized/fallback split is the first thing to read when
    throughput disappoints: fallback rows mean an owner group demoted to
    the scalar interpreter (heterogeneous batch, unsupported opcode, or a
    runtime bail — see ``kernel_bails``).
    """

    #: run_batch invocations
    batches: int = 0
    #: owner groups that attempted the vector path
    owner_groups: int = 0
    #: rows routed through compiled kernels end-to-end
    packets_vectorized: int = 0
    #: rows demoted to the scalar interpreter
    packets_fallback: int = 0
    #: kernel executions (one per device visit per owner group)
    kernel_calls: int = 0
    #: owner groups demoted after a compile/plan/runtime bail
    kernel_bails: int = 0
    #: conflict-free row slices executed across all kernel calls
    slices: int = 0



@dataclass
class EngineCounters(CounterMixin):
    """Lifetime totals of one :class:`~repro.emulator.engine.TrafficEngine`."""

    #: timed batch rounds emitted
    rounds: int = 0
    #: packets sent across all rounds
    packets: int = 0
    #: instructions executed across all rounds (from the run metrics)
    instructions: int = 0



@dataclass
class TenantCounters(CounterMixin):
    """Per-tenant activity at the gateway, one bag per authenticated tenant.

    The gateway (:mod:`repro.gateway`) maintains one instance per tenant and
    surfaces them through ``GET /v1/status``; every admission decision —
    committed, rejected for quota, pushed back, shed, expired — lands in
    exactly one of these counters, so a tenant's submitted total always
    equals the sum of its outcomes plus what is still queued or in flight.
    """

    #: submissions accepted into the admission scheduler
    submitted: int = 0
    #: submissions that committed a deployment
    committed: int = 0
    #: submissions whose deployment failed in the pipeline (compile,
    #: placement, resources) after being scheduled
    failed: int = 0
    #: submissions rejected before queueing: a per-tenant quota was full
    rejected_quota: int = 0
    #: submissions rejected with 429 + Retry-After: the lane's bounded
    #: admission queue was saturated and the tenant had no shedding claim
    rejected_backpressure: int = 0
    #: queued (never committed) submissions shed to admit heavier tenants
    shed: int = 0
    #: submissions that expired (deadline passed) before or during commit
    deadline_expired: int = 0
    #: programs removed by the tenant
    removed: int = 0

