"""Content-addressed artifact cache for the compilation pipeline.

ClickINC is a *service*: many tenants deploy instances of the same template
apps onto a shared network, so most compilation work repeats.  The
:class:`ArtifactCache` memoises the expensive pipeline artifacts behind
stable content hashes:

* ``program`` — compiled :class:`~repro.ir.program.IRProgram`s, keyed by the
  compile inputs (template profile, or source text + constants + header
  fields).  Program names are excluded from the key; a hit is re-branded to
  the requesting tenant's name.
* ``plan`` — :class:`~repro.placement.plan.PlacementPlan`s, keyed by the
  name-normalised program fingerprint, the placement request parameters and
  a fingerprint of the topology's current resource allocations.  Releasing a
  program restores the fingerprint, so re-deploying a template app after a
  removal is a pure cache hit.  Each plan carries ``device_fingerprints`` —
  the allocation fingerprint of every device its search consulted — and the
  pipeline writes validated speculative plans back under the same content
  address the sequential path would use, so later identical requests hit
  warm.  :meth:`ArtifactCache.prune_stale_plans` evicts entries whose
  stamps no longer match the live topology after a removal frees capacity —
  such plans can never validate again, so pruning them is purely a memory
  bound, mirroring ``DPPlacer.prune_memo`` on the placement memo.
* ``codegen`` — generated backend source, keyed by (snippet fingerprint,
  device model).
* ``memo`` — placement-memo entries written back by
  :class:`~repro.placement.memo.SharedPlacementMemo`: device-feasibility
  bits, interval gains and sub-tree DP tables, each stored as the triple
  ``(memo key, value, consulted device names)`` under a content address of
  the memo key.  Memo keys already embed per-device allocation
  fingerprints, so superseded entries simply stop being addressable and
  age out of the LRU — no eviction protocol is needed for correctness.

Keys are namespaced SHA-256 digests of a canonical JSON rendering of the
inputs, so any change to the inputs produces a different address.  The cache
is safe to share between the concurrent compile workers of
``ClickINC.deploy_many``, across the shards of a
:class:`~repro.sharding.coordinator.ShardCoordinator` (each shard owns its
own instance), and with the asyncio service's write-back path.
"""

from __future__ import annotations

import hashlib
import json
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Dict, Iterable, Optional, Tuple

from repro.ir.program import IRProgram
from repro.topology.network import NetworkTopology

#: Placeholder substituted for the program's own name when fingerprinting
#: with ``normalize_name=True`` (so identical programs deployed under
#: different tenant names share one address).
_NAME_ALIAS = "@program"


def canonical_json(payload: Any) -> str:
    """Deterministic JSON rendering used for all cache keys."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"), default=str)


def content_key(namespace: str, *parts: Any) -> str:
    """Build a namespaced content address from arbitrary JSON-able parts."""
    digest = hashlib.sha256(canonical_json(list(parts)).encode("utf-8")).hexdigest()
    return f"{namespace}:{digest}"


def fingerprint_ir(program: IRProgram, normalize_name: bool = False) -> str:
    """Stable content hash of an IR program.

    With ``normalize_name=True`` the program's own name is replaced by a
    placeholder wherever it appears (name, state owners, instruction owners
    and annotations), so two tenants' copies of the same compiled template
    hash identically.
    """
    own_name = program.name

    def norm(owner: Optional[str]) -> Optional[str]:
        if normalize_name and owner == own_name:
            return _NAME_ALIAS
        return owner

    payload = {
        "name": norm(own_name) if normalize_name else own_name,
        "header_fields": sorted(
            (f.name, f.width, f.is_vector, f.length)
            for f in program.header_fields.values()
        ),
        "states": sorted(
            (s.name, s.kind.value, s.rows, s.size, s.width, s.key_width,
             norm(s.owner))
            for s in program.states.values()
        ),
        "instructions": [
            (
                instr.opcode.value,
                instr.dst,
                list(instr.operands),
                instr.state,
                instr.guard,
                instr.guard_negated,
                instr.width,
                norm(instr.owner),
                sorted(norm(a) for a in instr.annotations),
            )
            for instr in program
        ],
    }
    return hashlib.sha256(canonical_json(payload).encode("utf-8")).hexdigest()


def topology_resource_fingerprint(topology: NetworkTopology) -> str:
    """Hash of every device's current resource allocations.

    Placement decisions depend only on the topology's structure (static) and
    on what is currently allocated on each device, so this fingerprint is the
    part of a placement cache key that tracks the mutable world: committing a
    plan changes it, releasing the same plan restores it.
    """
    return topology.allocation_fingerprint()


@dataclass
class CacheStats:
    """Hit/miss counters for one key namespace."""

    hits: int = 0
    misses: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


class ArtifactCache:
    """Thread-safe, content-addressed LRU cache for pipeline artifacts.

    Parameters
    ----------
    max_entries:
        Upper bound on stored artifacts; the least recently used entry is
        evicted beyond it.
    """

    def __init__(self, max_entries: int = 1024) -> None:
        if max_entries <= 0:
            raise ValueError("max_entries must be positive")
        self.max_entries = max_entries
        self._lock = threading.RLock()
        self._entries: "OrderedDict[str, object]" = OrderedDict()
        self._stats: Dict[str, CacheStats] = {}
        #: live entry count per namespace, so emptiness checks (e.g. "can a
        #: warm plan hit even exist?") cost O(1) instead of a full scan
        self._ns_counts: Dict[str, int] = {}

    # ------------------------------------------------------------------ #
    @staticmethod
    def make_key(namespace: str, *parts: Any) -> str:
        return content_key(namespace, *parts)

    def _namespace_of(self, key: str) -> str:
        return key.split(":", 1)[0]

    def lookup(self, key: str) -> Tuple[bool, Optional[object]]:
        """Return ``(hit, value)``; a hit refreshes the entry's LRU position."""
        with self._lock:
            stats = self._stats.setdefault(self._namespace_of(key), CacheStats())
            if key in self._entries:
                stats.hits += 1
                self._entries.move_to_end(key)
                return True, self._entries[key]
            stats.misses += 1
            return False, None

    def _forget(self, key: str) -> None:
        """Book-keeping for one removed entry (callers hold the lock)."""
        namespace = self._namespace_of(key)
        remaining = self._ns_counts.get(namespace, 0) - 1
        if remaining > 0:
            self._ns_counts[namespace] = remaining
        else:
            self._ns_counts.pop(namespace, None)

    def store(self, key: str, value: object) -> None:
        with self._lock:
            if key not in self._entries:
                namespace = self._namespace_of(key)
                self._ns_counts[namespace] = self._ns_counts.get(namespace, 0) + 1
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                evicted, _ = self._entries.popitem(last=False)
                self._forget(evicted)

    def invalidate(self, namespace: Optional[str] = None) -> int:
        """Drop all entries (or only one namespace's); returns count dropped."""
        with self._lock:
            if namespace is None:
                dropped = len(self._entries)
                self._entries.clear()
                self._ns_counts.clear()
                return dropped
            victims = [
                key for key in self._entries
                if self._namespace_of(key) == namespace
            ]
            for key in victims:
                del self._entries[key]
                self._forget(key)
            return len(victims)

    def invalidate_matching(self, namespace: str, predicate) -> int:
        """Drop *namespace* entries whose value satisfies *predicate*.

        Returns the number of entries dropped.  The predicate runs under the
        cache lock, so it must be cheap and must not call back into the
        cache.
        """
        with self._lock:
            victims = [
                key for key, value in self._entries.items()
                if self._namespace_of(key) == namespace and predicate(value)
            ]
            for key in victims:
                del self._entries[key]
                self._forget(key)
            return len(victims)

    def prune_stale_plans(self, live_fingerprints: Dict[str, str],
                          devices: Optional[Iterable[str]] = None) -> int:
        """Evict ``plan`` entries stamped against superseded device states.

        A cached plan records the allocation fingerprint of every device its
        search consulted.  After a removal frees capacity on *devices*, any
        entry whose search consulted one of them under a different allocation
        state — i.e. an entry that assumed the removed program's resources
        were (or were not) present — can never validate against the live
        topology again; it only pins the LRU and risks being served through a
        non-content-addressed path.  Entries whose stamps on *devices* match
        *live_fingerprints* are retained (e.g. the removed program's own
        plan, stamped against the very state the removal just restored —
        keeping warm re-deploys warm), as are entries that never consulted
        the affected devices (disjoint tenants keep their warm plans).  With
        ``devices=None`` every stamped device is checked.

        Callers on the remove/release path pair this with
        :meth:`DPPlacer.prune_memo <repro.placement.dp.DPPlacer.prune_memo>`,
        which applies the same device-driven eviction to the placer's
        cross-epoch memo of DP sub-solutions.
        """
        affected = set(devices) if devices is not None else None

        def stale(value: object) -> bool:
            fingerprints = getattr(value, "device_fingerprints", None)
            if not fingerprints:
                return False
            return any(
                live_fingerprints.get(name) != fingerprint
                for name, fingerprint in fingerprints.items()
                if affected is None or name in affected
            )

        return self.invalidate_matching("plan", stale)

    def namespace_len(self, namespace: str) -> int:
        """Live entry count in one namespace, in O(1).

        The hot use is the negative case: the parallel service's warm-path
        lookup can skip computing a plan key — which fingerprints the whole
        fabric — whenever no plan has ever been written back.
        """
        with self._lock:
            return self._ns_counts.get(namespace, 0)

    def namespace_items(self, namespace: str) -> list:
        """Snapshot of ``(key, value)`` pairs in one namespace.

        Taken under the lock and returned as a list, so callers (e.g. the
        shared memo's persistence path) can iterate without racing
        concurrent stores.  Does not touch LRU positions or stats.
        """
        with self._lock:
            return [
                (key, value) for key, value in self._entries.items()
                if self._namespace_of(key) == namespace
            ]

    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._entries

    def stats(self) -> Dict[str, CacheStats]:
        """Per-namespace hit/miss counters (copies, safe to keep)."""
        with self._lock:
            return {
                ns: CacheStats(hits=s.hits, misses=s.misses)
                for ns, s in self._stats.items()
            }

    def summary(self) -> Dict[str, object]:
        with self._lock:
            return {
                "entries": len(self._entries),
                "max_entries": self.max_entries,
                **{
                    ns: {"hits": s.hits, "misses": s.misses,
                         "hit_rate": round(s.hit_rate, 3)}
                    for ns, s in self._stats.items()
                },
            }
