"""The staged compilation pipeline behind the ClickINC controller.

A deployment is an explicit sequence of named stages::

    frontend -> ir-verify -> placement -> synthesis -> emulator-install -> codegen

The first two stages are *pure*: they read nothing but the request and the
shared :class:`~repro.core.cache.ArtifactCache`, so independent requests can
run them concurrently (``run_many``).  The remaining stages *commit* shared
state — device resources, synthesised executables, emulator runtimes — and
run sequentially in request order, which keeps batched deployment
deterministic: a batch produces exactly the placements the equivalent serial
loop would.

Batches can additionally run the frontend *and the placement search* in a
:class:`~repro.core.parallel.ParallelCompileService` process pool
(``run_many(..., workers=N)``): placement is commit-free, so each worker
produces a speculative :class:`~repro.placement.plan.PlacementPlan` against
a snapshot of device allocations, and the sequential commit phase validates
each plan's recorded device fingerprints — committing it untouched when they
still match (provably the sequential result) or re-placing against the live
topology on conflict.  Either way the batch yields exactly the placements of
the equivalent serial loop.

Every stage appends a :class:`StageRecord` (duration, cache-hit flag,
diagnostics) to the deployment's :class:`PipelineReport`.  If a commit stage
fails, the stages already committed are rolled back in reverse order, so a
mid-pipeline failure leaves the placer, synthesizer and emulator exactly as
they were before the deployment started.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.backend.codegen import generate_for_device
from repro.core.cache import (
    ArtifactCache,
    CacheStats,
    fingerprint_ir,
    topology_resource_fingerprint,
)
from repro.emulator.network import NetworkEmulator
from repro.exceptions import DeploymentError
from repro.frontend.compiler import (
    FrontendCompiler,
    profile_compile_key,
    source_compile_key,
)
from repro.ir.program import IRProgram
from repro.ir.verify import verify_program
from repro.lang.profile import Profile
from repro.obs import Observability
from repro.obs.trace import TraceContext
from repro.placement.blocks import BlockDAG
from repro.placement.dp import DPPlacer, PlacementRequest
from repro.placement.plan import PlacementPlan
from repro.synthesis.incremental import IncrementalSynthesizer, SynthesisDelta
from repro.topology.network import NetworkTopology

#: Canonical stage order of one deployment.
STAGE_ORDER = (
    "frontend",
    "ir-verify",
    "placement",
    "synthesis",
    "emulator-install",
    "codegen",
)


@dataclass
class DeployRequest:
    """One tenant's deployment request, in any of the three input forms.

    Exactly one of ``profile`` (template app), ``source`` (hand-written
    ClickINC program) or ``program`` (pre-compiled IR) must be given.
    """

    source_groups: Sequence[str]
    destination_group: str
    name: Optional[str] = None
    profile: Optional[Profile] = None
    source: Optional[str] = None
    program: Optional[IRProgram] = None
    constants: Optional[Dict[str, object]] = None
    header_fields: Optional[Dict[str, int]] = None
    traffic_rates: Optional[Dict[str, float]] = None
    #: Distributed-tracing context.  Attached by whoever started the trace
    #: (gateway or service), propagated through admission queues and the
    #: worker-pool pickle boundary, and deliberately excluded from every
    #: cache key (keys derive from program content and placement state).
    trace: Optional[TraceContext] = None

    def __post_init__(self) -> None:
        inputs = [x is not None for x in (self.profile, self.source, self.program)]
        if sum(inputs) != 1:
            raise DeploymentError(
                "a DeployRequest needs exactly one of profile/source/program"
            )
        if self.source is not None and not self.name:
            raise DeploymentError("source-based requests must carry a name")

    def resolved_name(self) -> str:
        if self.name:
            return self.name
        if self.profile is not None:
            return f"{self.profile.app.lower()}_{self.profile.user}"
        return self.program.name  # program path; source path always has a name


@dataclass
class StageRecord:
    """Timing + diagnostics of one pipeline stage of one deployment."""

    name: str
    duration_s: float
    cache_hit: bool = False
    detail: Dict[str, object] = field(default_factory=dict)


@dataclass
class DeployedProgram:
    """Book-keeping for one deployed user program."""

    name: str
    plan: PlacementPlan
    delta: SynthesisDelta
    source_groups: List[str]
    destination_group: str
    device_sources: Dict[str, str] = field(default_factory=dict)
    deploy_time_s: float = 0.0
    report: Optional["PipelineReport"] = None
    #: The request's per-source traffic rates, retained so the runtime layer
    #: can re-place the program with identical parameters after a failure.
    traffic_rates: Optional[Dict[str, float]] = None

    def devices(self) -> List[str]:
        return self.plan.devices_used()


@dataclass
class PipelineReport:
    """Per-deployment result: stage records plus the outcome."""

    program_name: str
    stages: List[StageRecord] = field(default_factory=list)
    total_s: float = 0.0
    succeeded: bool = False
    error: Optional[str] = None
    failed_stage: Optional[str] = None
    deployed: Optional[DeployedProgram] = None

    def stage(self, name: str) -> StageRecord:
        for record in self.stages:
            if record.name == name:
                return record
        raise KeyError(f"no stage record named {name!r}")

    def cache_hits(self) -> List[str]:
        return [record.name for record in self.stages if record.cache_hit]

    def summary(self) -> Dict[str, object]:
        return {
            "program": self.program_name,
            "succeeded": self.succeeded,
            "total_s": round(self.total_s, 4),
            "failed_stage": self.failed_stage,
            "stages": {
                record.name: {
                    "duration_s": round(record.duration_s, 6),
                    "cache_hit": record.cache_hit,
                }
                for record in self.stages
            },
        }


def program_cache_key(request: DeployRequest, cache: ArtifactCache) -> Optional[str]:
    """The ``program`` cache address of *request*, or None if precompiled."""
    if request.program is not None:
        return None
    if request.profile is not None:
        return cache.make_key("program", profile_compile_key(request.profile))
    return cache.make_key(
        "program",
        source_compile_key(request.source, request.constants,
                           request.header_fields),
    )


def single_flight_waves(keys: Sequence[Optional[str]],
                        skip: Optional[set] = None
                        ) -> Tuple[List[int], List[int]]:
    """Partition request indices into single-flight leaders and followers.

    Requests sharing a compile key ride on one leader compilation; followers
    run in a second wave, once the leaders' programs are in the shared
    cache.  Requests without a key (precompiled IR) are always leaders.
    Both batch drivers (thread and process pool) use this partition, so
    deduplication semantics cannot diverge between them.  Indices in *skip*
    (requests already served, e.g. from the warm plan cache) are excluded
    from both waves.
    """
    leaders: List[int] = []
    followers: List[int] = []
    seen: set = set()
    for index, key in enumerate(keys):
        if skip is not None and index in skip:
            continue
        if key is None or key not in seen:
            leaders.append(index)
            if key is not None:
                seen.add(key)
        else:
            followers.append(index)
    return leaders, followers


def compile_request(request: DeployRequest, compiler: FrontendCompiler,
                    cache: ArtifactCache
                    ) -> Tuple[IRProgram, List[StageRecord]]:
    """Run the pure ``frontend`` and ``ir-verify`` stages of one request.

    This is a free function (rather than pipeline state) so process-pool
    workers can run it against their own compiler and cache; exceptions are
    annotated with a ``pipeline_stage`` attribute naming the failing stage.
    """
    records: List[StageRecord] = []
    name = request.resolved_name()

    start = time.perf_counter()
    stage = "frontend"
    try:
        hit = False
        if request.program is not None:
            program = request.program
            if program.name != name:
                program = program.rebrand(name)
            detail: Dict[str, object] = {"kind": "precompiled"}
        else:
            kind = "profile" if request.profile is not None else "source"
            key = program_cache_key(request, cache)
            hit, cached = cache.lookup(key)
            if hit:
                program = cached.rebrand(name)
            elif request.profile is not None:
                program = compiler.compile_profile(request.profile, name=name)
            else:
                program = compiler.compile_source(
                    request.source, name=name, constants=request.constants,
                    header_fields=request.header_fields,
                )
            detail = {"kind": kind, "instructions": len(program)}
        records.append(StageRecord(stage, time.perf_counter() - start,
                                   cache_hit=hit, detail=detail))

        stage = "ir-verify"
        start = time.perf_counter()
        verify_program(program)
        records.append(StageRecord(stage, time.perf_counter() - start))
        if request.program is None and not hit:
            # only verified programs enter the content-addressed store
            cache.store(key, program)
    except Exception as exc:
        setattr(exc, "pipeline_stage", stage)
        raise
    return program, records


def rebrand_plan(plan: PlacementPlan, program: IRProgram) -> PlacementPlan:
    """Re-own a cached placement plan for *program*.

    The cached plan was computed for an identical program content under a
    (possibly) different name; block instruction uids are assigned
    sequentially by compilation order, so they transfer unchanged.  The
    returned plan shares the immutable search artifacts (blocks, DAG edges,
    dependency graph, stage assignments) but carries the new owner, so the
    snippets it materialises are annotated for the new tenant.
    """
    dag = plan.block_dag
    if len(program) != len(dag.program):
        raise DeploymentError(
            f"cached plan for {dag.program.name!r} does not match program "
            f"{program.name!r} ({len(dag.program)} vs {len(program)} instructions)"
        )
    new_dag = BlockDAG(
        program=program,
        blocks=list(dag.blocks),
        graph=dag.graph,
        dependency=dag.dependency,
    )
    return PlacementPlan(
        program_name=program.name,
        block_dag=new_dag,
        assignments=[
            replace(a, device_names=list(a.device_names),
                    stage_assignments=dict(a.stage_assignments))
            for a in plan.assignments
        ],
        gain=plan.gain,
        algorithm=plan.algorithm,
        compile_time_s=plan.compile_time_s,
        served_traffic_fraction=plan.served_traffic_fraction,
        transfer_bits=plan.transfer_bits,
        metadata=dict(plan.metadata),
        topology_fingerprint=plan.topology_fingerprint,
        device_fingerprints=dict(plan.device_fingerprints),
        epoch=plan.epoch,
        shard_epochs=dict(plan.shard_epochs),
    )


class CompilationPipeline:
    """Runs deployments as an explicit staged pipeline over shared backends."""

    def __init__(
        self,
        topology: NetworkTopology,
        compiler: FrontendCompiler,
        placer: DPPlacer,
        synthesizer: IncrementalSynthesizer,
        emulator: NetworkEmulator,
        cache: Optional[ArtifactCache] = None,
        generate_code: bool = True,
        adaptive_weights: bool = True,
        obs: Optional[Observability] = None,
    ) -> None:
        self.topology = topology
        self.compiler = compiler
        self.placer = placer
        self.synthesizer = synthesizer
        self.emulator = emulator
        self.cache = cache if cache is not None else ArtifactCache()
        self.generate_code = generate_code
        self.adaptive_weights = adaptive_weights
        # the persistent process-pool compile service (created lazily by
        # parallel_service(); kept alive across batches and released by
        # close())
        self._parallel = None
        self.obs = obs if obs is not None else Observability.default()
        registry = self.obs.registry
        self._stage_hist = registry.histogram(
            "clickinc_pipeline_stage_seconds",
            "Wall-clock seconds per pipeline stage per deployment",
            ("stage",))
        self._phase_hist = registry.histogram(
            "clickinc_wave_phase_seconds",
            "Seconds per deployment-wave phase (compile / commit)",
            ("phase",))
        self._memo_hit_hist = registry.histogram(
            "clickinc_memo_hit_seconds",
            "Service time of plan-cache / placement-memo warm hits")

    # ------------------------------------------------------------------ #
    # pure stages (safe to run concurrently across requests)
    # ------------------------------------------------------------------ #
    def program_cache_key(self, request: DeployRequest) -> Optional[str]:
        """The ``program`` cache address of *request*, or None if precompiled."""
        return program_cache_key(request, self.cache)

    def compile_stages(self, request: DeployRequest
                       ) -> Tuple[IRProgram, List[StageRecord]]:
        """Run ``frontend`` and ``ir-verify`` for one request."""
        return compile_request(request, self.compiler, self.cache)

    def placement_request(self, program: IRProgram,
                          request: DeployRequest) -> PlacementRequest:
        """The placement search input for *program* deployed as *request*."""
        return PlacementRequest(
            program=program,
            source_groups=list(request.source_groups),
            destination_group=request.destination_group,
            traffic_rates=dict(request.traffic_rates)
            if request.traffic_rates else None,
            adaptive_weights=self.adaptive_weights,
        )

    def plan_cache_key(self, placement_request: PlacementRequest) -> str:
        """Content address of a placement under the live topology state.

        The key covers the name-normalised program content, every placement
        parameter, and a fingerprint of the topology's current allocations —
        so a hit is only possible when the DP search would provably retrace
        the cached run.
        """
        return self.cache.make_key(
            "plan",
            fingerprint_ir(placement_request.program, normalize_name=True),
            list(placement_request.source_groups),
            placement_request.destination_group,
            placement_request.traffic_rates or {},
            placement_request.max_block_size,
            placement_request.use_blocks,
            placement_request.adaptive_weights,
            placement_request.prune,
            topology_resource_fingerprint(self.topology),
        )

    # ------------------------------------------------------------------ #
    # commit stages (sequential; mutate shared placer/synth/emulator state)
    # ------------------------------------------------------------------ #
    def commit_stages(self, program: IRProgram, request: DeployRequest,
                      records: List[StageRecord],
                      speculative_plan: Optional[PlacementPlan] = None,
                      speculative_from_cache: bool = False
                      ) -> DeployedProgram:
        """Run placement → synthesis → emulator-install → codegen.

        When a *speculative_plan* (a commit-free placement computed against
        an earlier snapshot of device allocations) is given, it is validated
        against the live topology first: if no consulted device changed, the
        plan commits as-is; otherwise the request is re-placed sequentially,
        which reproduces exactly what a serial loop would have computed.
        ``speculative_from_cache`` marks a plan served from the shared plan
        cache (it is recorded as a cache hit and not written back again).

        On failure every already-committed stage is rolled back in reverse
        order before the original exception is re-raised (annotated with a
        ``pipeline_stage`` attribute naming the failing stage).
        """
        name = program.name
        undo: List = []
        stage = "validation"
        try:
            if name in self.synthesizer.plans:
                raise DeploymentError(f"program {name!r} is already deployed")
            stage = "placement"
            start = time.perf_counter()
            plan: Optional[PlacementPlan] = None
            hit = False
            speculative_detail: Dict[str, object] = {}
            if speculative_plan is not None:
                conflicts = self.placer.validate(speculative_plan)
                if conflicts:
                    speculative_detail = {"speculative": False,
                                          "replaced_on_conflict": True,
                                          "conflicts": conflicts}
                else:
                    plan = speculative_plan
                    hit = speculative_from_cache
                    speculative_detail = {
                        "speculative": True,
                        "speculative_place_s": speculative_plan.compile_time_s,
                    }
                    if not speculative_from_cache:
                        # plan-cache write-back: a validated speculative plan
                        # is exactly what the sequential DP search would
                        # produce against the live (pre-commit) topology, so
                        # store it under the same content address
                        # _place_cached would use — later identical requests
                        # hit warm instead of paying the search again in a
                        # worker.
                        key = self.plan_cache_key(
                            self.placement_request(program, request)
                        )
                        if key not in self.cache:
                            self.cache.store(key, plan)
                            speculative_detail["plan_write_back"] = True
            if plan is None:
                placement_request = self.placement_request(program, request)
                plan, hit = self._place_cached(placement_request)
            self.placer.commit(plan)
            undo.append(lambda: self.placer.release(plan))
            detail: Dict[str, object] = {"devices": plan.devices_used(),
                                         "gain": round(plan.gain, 4)}
            detail.update(speculative_detail)
            records.append(StageRecord(
                stage, time.perf_counter() - start, cache_hit=hit,
                detail=detail,
            ))

            stage = "synthesis"
            start = time.perf_counter()
            delta = self.synthesizer.add_program(plan)
            undo.append(lambda: self.synthesizer.rollback_add(name))
            records.append(StageRecord(
                stage, time.perf_counter() - start,
                detail={"affected_devices": delta.num_affected_devices},
            ))

            stage = "emulator-install"
            start = time.perf_counter()
            self.emulator.deploy(plan, request.source_groups,
                                 request.destination_group)
            undo.append(lambda: self.emulator.rollback_deploy(name))
            records.append(StageRecord(stage, time.perf_counter() - start))

            stage = "codegen"
            start = time.perf_counter()
            device_sources: Dict[str, str] = {}
            hits_before = self.cache.stats().get("codegen", CacheStats()).hits
            if self.generate_code:
                for device_name, snippet in plan.device_snippets().items():
                    device = self.topology.device(device_name)
                    device_sources[device_name] = generate_for_device(
                        device, snippet, cache=self.cache
                    )
            hits_after = self.cache.stats().get("codegen", CacheStats()).hits
            all_hit = bool(device_sources) and (
                hits_after - hits_before == len(device_sources)
            )
            records.append(StageRecord(
                stage, time.perf_counter() - start, cache_hit=all_hit,
                detail={"devices": sorted(device_sources)},
            ))
        except Exception as exc:
            rollback_errors = []
            for action in reversed(undo):
                try:
                    action()
                except Exception as rollback_exc:  # keep the original error
                    rollback_errors.append(repr(rollback_exc))
            setattr(exc, "pipeline_stage", stage)
            if rollback_errors:
                setattr(exc, "pipeline_rollback_errors", rollback_errors)
            raise

        return DeployedProgram(
            name=name,
            plan=plan,
            delta=delta,
            source_groups=list(request.source_groups),
            destination_group=request.destination_group,
            device_sources=device_sources,
            traffic_rates=dict(request.traffic_rates)
            if request.traffic_rates else None,
        )

    def _place_cached(self, placement_request: PlacementRequest
                      ) -> Tuple[PlacementPlan, bool]:
        """Placement with content-addressed memoisation.

        The key covers the name-normalised program content, every placement
        parameter, and a fingerprint of the topology's current allocations —
        so a hit is only possible when the DP search would provably retrace
        the cached run.
        """
        program = placement_request.program
        key = self.plan_cache_key(placement_request)
        lookup_start = time.perf_counter()
        hit, cached = self.cache.lookup(key)
        if hit:
            plan = rebrand_plan(cached, program)
            # the key embeds the live topology fingerprint, so a hit proves
            # the allocation state is content-identical to placement time;
            # re-stamp the epoch so validation fast-paths on the live value
            plan.epoch = self.topology.allocation_epoch()
            self._memo_hit_hist.observe(time.perf_counter() - lookup_start)
            return plan, True
        plan = self.placer.place(placement_request)
        self.cache.store(key, plan)
        return plan, False

    # ------------------------------------------------------------------ #
    # removal (the reverse commit phase)
    # ------------------------------------------------------------------ #
    def remove(self, name: str, deployed: DeployedProgram,
               lazy: bool = True) -> SynthesisDelta:
        """Release *deployed* from every layer, atomically.

        The removal order is synthesis → placement → emulator; a failure
        mid-removal re-installs the already-released layers before
        re-raising, so no resources are stranded without a record.  After a
        successful removal, plan-cache entries stamped against the
        pre-removal allocations of the devices the program occupied are
        evicted (:meth:`ArtifactCache.prune_stale_plans`): the capacity they
        assumed occupied is free again, so they can never validate against
        the live topology.  Entries that never consulted those devices, or
        whose stamps match the restored state, are retained.  The placer's
        cross-epoch memo is pruned the same way
        (:meth:`DPPlacer.prune_memo <repro.placement.dp.DPPlacer.prune_memo>`)
        so long-lived services don't accumulate sub-solutions for dead
        programs.
        """
        delta = self.synthesizer.remove_program(name, lazy=lazy)
        try:
            self.placer.release(deployed.plan)
        except Exception:
            self.synthesizer.add_program(deployed.plan)
            raise
        try:
            self.emulator.undeploy(name)
        except Exception:
            self.placer.commit(deployed.plan)
            self.synthesizer.add_program(deployed.plan)
            raise
        self.cache.prune_stale_plans(
            self.topology.device_fingerprints(),
            devices=deployed.plan.devices_used(),
        )
        self.placer.prune_memo(deployed.plan.devices_used())
        return delta

    # ------------------------------------------------------------------ #
    # runtime operations (migration rollback, rolling updates)
    # ------------------------------------------------------------------ #
    def reinstall(self, deployed: DeployedProgram) -> None:
        """Re-commit a previously removed program's exact plan.

        The reverse of :meth:`remove`: placement resources, the synthesised
        executables and the emulator installs are restored unchanged, with
        no placement search and no validation — the caller asserts the plan
        is the state to return to (migration rollback, failed update).  A
        failure mid-reinstall unwinds the layers already restored before
        re-raising, so the operation is atomic either way.
        """
        plan = deployed.plan
        self.placer.commit(plan)
        try:
            self.synthesizer.add_program(plan)
        except Exception:
            self.placer.release(plan)
            raise
        try:
            self.emulator.deploy(plan, deployed.source_groups,
                                 deployed.destination_group)
        except Exception:
            self.synthesizer.rollback_add(plan.program_name)
            self.placer.release(plan)
            raise

    def update(self, name: str, deployed: DeployedProgram,
               request: DeployRequest) -> PipelineReport:
        """Swap *deployed* for the new version described by *request*.

        The new version is compiled against a shadow snapshot first (the
        pure stages read nothing but the request and the artifact cache),
        so the shared network is untouched until the swap itself: the old
        version is removed and the new one committed back-to-back through
        the serial commit phase — one wave barrier, so callers serialised
        through it (``run_many`` batches, the asyncio service) never
        observe a half-updated network.  Compatible register/table state is
        carried across the swap.  If the new version cannot be placed or
        installed, the old version is reinstalled unchanged and the error
        re-raised — the update either fully happens or leaves no trace.
        """
        start = time.perf_counter()
        report = PipelineReport(program_name=name)
        program, records = self.compile_stages(request)
        if program.name != name:
            program = program.rebrand(name)
        report.stages = records
        snapshot = self.emulator.snapshot_owner_state(name)
        self.remove(name, deployed)
        try:
            new_deployed = self.commit_stages(program, request, records)
        except Exception as exc:
            self.reinstall(deployed)
            self.emulator.restore_owner_state(name, snapshot)
            setattr(exc, "pipeline_stage",
                    getattr(exc, "pipeline_stage", "update"))
            raise
        self.emulator.restore_owner_state(name, snapshot)
        report.total_s = time.perf_counter() - start
        report.succeeded = True
        report.deployed = new_deployed
        new_deployed.deploy_time_s = report.total_s
        new_deployed.report = report
        return report

    # ------------------------------------------------------------------ #
    # drivers
    # ------------------------------------------------------------------ #
    def parallel_service(self, workers: int):
        """The persistent process-pool compile service, created on demand.

        The service (and its worker pool) survives across batches: workers
        keep their forked topology snapshot and re-sync allocation changes
        through the epoch-tagged fingerprint-delta protocol instead of being
        re-forked per batch.  Asking for a different ``workers`` count
        replaces the pool; :meth:`close` releases it deterministically.
        """
        from repro.core.parallel import ParallelCompileService

        service = self._parallel
        if service is not None and service.workers != max(1, int(workers)):
            service.close()
            service = None
        if service is None:
            service = ParallelCompileService(self, workers=workers)
            self._parallel = service
        return service

    @property
    def parallel(self):
        """The live persistent compile service, or None before first use.

        Public read access for observability (pool generation, batches
        served) — the lifecycle stays with :meth:`parallel_service` and
        :meth:`close`.
        """
        return self._parallel

    def close(self) -> None:
        """Release the persistent worker pool (idempotent)."""
        if self._parallel is not None:
            self._parallel.close()
            self._parallel = None

    def run(self, request: DeployRequest) -> PipelineReport:
        """Deploy one request through all six stages.

        Exceptions propagate to the caller (annotated with the failing stage)
        after rollback; use :meth:`run_many` for the error-capturing batch
        behaviour.
        """
        start = time.perf_counter()
        report = PipelineReport(program_name=request.resolved_name())
        program, records = self.compile_stages(request)
        report.stages = records
        report.program_name = program.name
        deployed = self.commit_stages(program, request, records)
        report.total_s = time.perf_counter() - start
        report.succeeded = True
        report.deployed = deployed
        deployed.deploy_time_s = report.total_s
        deployed.report = report
        self._finish_report(request, report)
        return report

    def run_many(self, requests: Sequence[DeployRequest],
                 max_workers: Optional[int] = None,
                 workers: Optional[int] = None) -> List[PipelineReport]:
        """Deploy a batch: concurrent pure-compile, sequential commit.

        With ``workers`` > 1 the frontend *and the DP placement search* of
        every request run in a process pool
        (:class:`~repro.core.parallel.ParallelCompileService`) for real
        multi-core speedup; the sequential commit phase validates each
        speculative plan's device fingerprints and re-places on conflict, so
        placements always equal the equivalent serial loop's.  Otherwise the
        pure compile stages overlap on a thread pool of ``max_workers``.

        Reports are returned in request order.  A failing request is captured
        in its report (``succeeded=False``, ``error``, ``failed_stage``) and
        does not abort the remainder of the batch; its partial commits are
        rolled back.
        """
        requests = list(requests)
        if not requests:
            return []
        if workers is not None and workers > 1:
            return self._run_many_speculative(requests, workers)
        reports = [
            PipelineReport(program_name=request.resolved_name())
            for request in requests
        ]
        start_times = [time.perf_counter()] * len(requests)
        compiled: List[Optional[Tuple[IRProgram, List[StageRecord]]]] = (
            [None] * len(requests)
        )
        # single-flight: requests sharing a compile key ride on one leader
        # compilation — followers run after the leaders and hit the cache
        leaders, followers = single_flight_waves(
            [self.program_cache_key(request) for request in requests]
        )

        workers = max_workers or min(8, len(requests))
        with ThreadPoolExecutor(max_workers=workers) as pool:
            for wave in (leaders, followers):
                futures = {
                    index: pool.submit(self.compile_stages, requests[index])
                    for index in wave
                }
                for index, future in futures.items():
                    try:
                        compiled[index] = future.result()
                    except Exception as exc:
                        reports[index].succeeded = False
                        reports[index].error = str(exc)
                        reports[index].failed_stage = getattr(
                            exc, "pipeline_stage", "frontend"
                        )

        for index, request in enumerate(requests):
            report = reports[index]
            if compiled[index] is None:
                report.total_s = time.perf_counter() - start_times[index]
                continue
            program, records = compiled[index]
            report.stages = records
            report.program_name = program.name
            try:
                deployed = self.commit_stages(program, request, records)
            except Exception as exc:
                report.succeeded = False
                report.error = str(exc)
                report.failed_stage = getattr(exc, "pipeline_stage", None)
                report.total_s = time.perf_counter() - start_times[index]
                continue
            report.total_s = time.perf_counter() - start_times[index]
            report.succeeded = True
            report.deployed = deployed
            deployed.deploy_time_s = report.total_s
            deployed.report = report
        for request, report in zip(requests, reports):
            self._finish_report(request, report)
        return reports

    def commit_speculative_result(self, request: DeployRequest, result,
                                  report: PipelineReport,
                                  started: float) -> PipelineReport:
        commit_start = time.perf_counter()
        try:
            return self._commit_speculative(request, result, report, started)
        finally:
            self._phase_hist.labels("commit").observe(
                time.perf_counter() - commit_start)
            self._finish_report(request, report)

    def _commit_speculative(self, request: DeployRequest, result,
                            report: PipelineReport,
                            started: float) -> PipelineReport:
        """Drive the commit phase for one speculative compile result.

        *result* is a :class:`~repro.core.parallel.SpeculativeResult` from
        the parallel compile phase.  This is the second half of the explicit
        two-phase interface: the pure phase (``compile_batch``) can run
        anywhere — worker processes, inline fallbacks, an asyncio service
        wave — and this method serialises its outcome into the shared
        topology, validating the speculative plan (or re-placing on
        conflict) and filling in *report*.  Callers must invoke it
        sequentially, in admission order.
        """
        report.stages = list(result.records)
        # a placement failure against the worker's snapshot is advisory:
        # the commit phase below re-places against the live topology
        retryable = (result.failed_stage == "placement"
                     and result.program is not None)
        if result.error is not None and not retryable:
            report.succeeded = False
            report.error = result.error
            report.failed_stage = result.failed_stage
            report.total_s = time.perf_counter() - started
            return report
        program = result.program
        report.program_name = program.name
        try:
            deployed = self.commit_stages(
                program, request, report.stages,
                speculative_plan=result.plan,
                speculative_from_cache=getattr(result, "plan_from_cache",
                                               False),
            )
        except Exception as exc:
            report.succeeded = False
            report.error = str(exc)
            report.failed_stage = getattr(exc, "pipeline_stage", None)
            report.total_s = time.perf_counter() - started
            return report
        report.total_s = time.perf_counter() - started
        report.succeeded = True
        report.deployed = deployed
        deployed.deploy_time_s = report.total_s
        deployed.report = report
        return report

    def _finish_report(self, request: DeployRequest,
                       report: PipelineReport) -> None:
        """Telemetry at report completion (exactly once per deployment).

        Observes every stage duration into the stage histogram and, when
        the request carries a trace context, emits one span per stage.
        Stage spans are duration-faithful but end-aligned: the records only
        store durations, so spans are stacked back from now — exact for the
        just-committed stages, shifted for compile stages that ran earlier
        in a worker (whose own worker-side spans carry real timestamps).
        """
        tracer = self.obs.tracer
        ctx = request.trace
        emit = ctx is not None and tracer.enabled
        if not emit and not self.obs.registry.enabled:
            return
        cursor = time.time() - sum(r.duration_s for r in report.stages)
        for record in report.stages:
            self._stage_hist.labels(record.name).observe(record.duration_s)
            if emit:
                cursor += record.duration_s
                tracer.emit(ctx, record.name, record.duration_s,
                            end_s=cursor, cache_hit=record.cache_hit)
        if emit and not report.succeeded:
            tracer.emit(ctx, "pipeline-error", 0.0, error=report.error,
                        failed_stage=report.failed_stage)

    def _run_many_speculative(self, requests: List[DeployRequest],
                              workers: int) -> List[PipelineReport]:
        """Process-pool batch driver: parallel compile+place, serial commit.

        Uses the *persistent* :meth:`parallel_service` pool — the first
        batch pays the fork, later batches re-sync the workers' topology
        snapshots through the fingerprint-delta protocol.
        """
        batch_start = time.perf_counter()
        reports = [
            PipelineReport(program_name=request.resolved_name())
            for request in requests
        ]
        service = self.parallel_service(workers)
        results = service.compile_batch(requests)
        for index, request in enumerate(requests):
            self.commit_speculative_result(
                request, results[index], reports[index], batch_start
            )
        return reports
