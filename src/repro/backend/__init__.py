"""Chip-specific backends.

The backends translate a device executable (base program + user snippets in
IR form) into device-specific source text:

* :mod:`repro.backend.p4` — P4-16 for Tofino / Tofino2 (TNA-style),
* :mod:`repro.backend.npl` — NPL for Broadcom Trident4,
* :mod:`repro.backend.microc` — Micro-C for Netronome NFP smartNICs,
* :mod:`repro.backend.hls` — C++ HLS for Xilinx FPGA cards.

The generated text is not compiled by vendor toolchains in this repository
(those are closed source); it exists so that (a) the end-to-end workflow is
complete, (b) the Table 1 lines-of-code comparison can be measured on real
output, and (c) the emulator can attach generated sources to its device
images for inspection.
"""

from repro.backend.codegen import CodeGenerator, generate_for_device
from repro.backend.p4 import P4Generator
from repro.backend.npl import NPLGenerator
from repro.backend.microc import MicroCGenerator
from repro.backend.hls import HLSGenerator

__all__ = [
    "CodeGenerator",
    "generate_for_device",
    "P4Generator",
    "NPLGenerator",
    "MicroCGenerator",
    "HLSGenerator",
]
