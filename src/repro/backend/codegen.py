"""Common code-generation machinery shared by all backends."""

from __future__ import annotations

import abc
from typing import Dict, Optional

from repro.devices.base import Device
from repro.exceptions import BackendError
from repro.ir.program import IRProgram


class CodeGenerator(abc.ABC):
    """Base class for chip-specific code generators."""

    #: Human-readable target language name.
    language: str = ""
    #: Device type strings this generator accepts.
    targets: tuple = ()

    def generate(self, program: IRProgram) -> str:
        """Generate full source text for *program*."""
        sections = [
            self.prologue(program),
            self.declarations(program),
            self.body(program),
            self.epilogue(program),
        ]
        return "\n".join(section for section in sections if section)

    def loc(self, program: IRProgram) -> int:
        """Non-blank lines of generated code (used by the Table 1 benchmark)."""
        return sum(1 for line in self.generate(program).splitlines() if line.strip())

    # -- hooks ----------------------------------------------------------------
    @abc.abstractmethod
    def prologue(self, program: IRProgram) -> str:
        ...

    @abc.abstractmethod
    def declarations(self, program: IRProgram) -> str:
        ...

    @abc.abstractmethod
    def body(self, program: IRProgram) -> str:
        ...

    def epilogue(self, program: IRProgram) -> str:
        return ""

    # -- shared helpers -------------------------------------------------------
    @staticmethod
    def sanitize(name: str) -> str:
        return (
            name.replace(".", "_").replace("%", "tmp_").replace("[", "_")
            .replace("]", "").replace("__", "_").replace("#", "_")
        )

    @classmethod
    def operand_text(cls, operand: object) -> str:
        if isinstance(operand, str):
            if operand.startswith("const."):
                return f'"{operand[6:]}"'
            if operand.startswith("hdr."):
                return "hdr." + cls.sanitize(operand[4:])
            if operand.startswith("meta."):
                return "meta." + cls.sanitize(operand[5:])
            return cls.sanitize(operand)
        return str(operand)


_GENERATOR_REGISTRY: Dict[str, "CodeGenerator"] = {}


def register_generator(generator: CodeGenerator) -> None:
    for target in generator.targets:
        _GENERATOR_REGISTRY[target] = generator


def generate_for_device(device: Device, program: IRProgram,
                        cache: Optional[object] = None) -> str:
    """Generate device-specific source for *program* on *device*.

    When an :class:`~repro.core.cache.ArtifactCache` is passed, the generated
    source is memoised under ``(program content hash, device model)``:
    generation is deterministic per device type, so regenerating code for an
    identical snippet on an identical device model is a cache hit.
    """
    # imported lazily to avoid circular imports at module load time
    from repro.backend.p4 import P4Generator
    from repro.backend.npl import NPLGenerator
    from repro.backend.microc import MicroCGenerator
    from repro.backend.hls import HLSGenerator

    if not _GENERATOR_REGISTRY:
        register_generator(P4Generator())
        register_generator(NPLGenerator())
        register_generator(MicroCGenerator())
        register_generator(HLSGenerator())
    generator = _GENERATOR_REGISTRY.get(device.dev_type)
    if generator is None:
        raise BackendError(
            f"no backend registered for device type {device.dev_type!r}"
        )
    if cache is None:
        return generator.generate(program)

    from repro.core.cache import fingerprint_ir

    key = cache.make_key("codegen", device.dev_type, fingerprint_ir(program))
    hit, code = cache.lookup(key)
    if hit:
        return code
    code = generator.generate(program)
    cache.store(key, code)
    return code
