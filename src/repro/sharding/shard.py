"""One controller shard: a full ClickINC stack over a shard-local view.

A :class:`ControllerShard` owns everything the whole-fabric controller owns
— compiler, DP placer, incremental synthesizer, emulator, artifact/plan
cache, persistent worker pool, runtime manager — but scoped to one
partition region's view of the topology
(:meth:`~repro.topology.network.NetworkTopology.subview`).  Because the
view shares ``Device``/``Link`` objects with the parent fabric, resource
accounting is globally consistent with zero coordination; because the
view's allocation epoch covers only the shard's own (plus border) devices,
commits in *other* shards never invalidate this shard's plan cache or
speculative placements.

Every mutation of shared state goes through :attr:`lock` — the shard's
commit lock.  Intra-shard work only ever takes its own lock, so shards
proceed in parallel; a cross-shard two-phase commit takes the locks of
every shard it touches (in deterministic order), making it a barrier for
exactly those shards and nobody else.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, List, Optional, Sequence

from repro.core.controller import ClickINC
from repro.core.pipeline import DeployRequest, PipelineReport
from repro.core.stats import ShardCounters
from repro.synthesis.incremental import SynthesisDelta
from repro.topology.network import NetworkTopology

__all__ = ["ControllerShard"]


class ControllerShard:
    """A per-region controller: own pipeline, caches, pool and runtime.

    Parameters
    ----------
    shard_id:
        The partition region this shard serves (e.g. ``"pod0"``).
    view:
        The shard-local topology view (region devices + shared border).
    workers:
        Process-pool width for this shard's speculative compile waves.
    memo:
        Placement memo for the shard's DP placer.  The coordinator passes
        one :class:`~repro.placement.memo.SharedPlacementMemo` to every
        shard (and to its own cross-shard controller): memo keys are
        name-blind and content-addressed via the symmetric-pod sub-tree
        signatures, so a pod sub-tree table derived while placing in shard
        A is a direct hit for the isomorphic pod of shard B.  Omit it for
        a private per-shard memo.
    controller_kwargs:
        Forwarded to the shard's :class:`ClickINC` controller.
    """

    def __init__(self, shard_id: str, view: NetworkTopology, *,
                 workers: int = 1, memo=None, **controller_kwargs) -> None:
        self.shard_id = shard_id
        self.view = view
        self.workers = max(1, int(workers))
        self.controller = ClickINC(view, memo=memo, **controller_kwargs)
        #: the shard's commit lock: intra-shard waves hold it for their
        #: commit phase, cross-shard prepares take it for the 2PC window
        self.lock = threading.RLock()
        self.stats = ShardCounters()

    # ------------------------------------------------------------------ #
    # device / group membership
    # ------------------------------------------------------------------ #
    def device_names(self) -> List[str]:
        """Every device visible to this shard (own region + border)."""
        return list(self.view.devices)

    def sees_device(self, name: str) -> bool:
        return name in self.view.devices

    def owns_group(self, group: str) -> bool:
        return group in self.view.host_groups

    def allocation_epoch(self) -> int:
        """The shard-scoped allocation epoch (view devices only)."""
        return self.view.allocation_epoch()

    # ------------------------------------------------------------------ #
    # intra-shard operations (serialised on the shard's own lock only)
    # ------------------------------------------------------------------ #
    def deploy(self, request: DeployRequest) -> PipelineReport:
        """Deploy one intra-shard request through the shard's pipeline."""
        with self.lock:
            report = self.controller.pipeline.run(request)
            self.controller.deployed[report.program_name] = report.deployed
            self.stats.increment("deploys")
            return report

    def deploy_many(self, requests: Sequence[DeployRequest],
                    workers: Optional[int] = None) -> List[PipelineReport]:
        """Deploy a batch of intra-shard requests (shard-local wave).

        The pure compile + speculative placement phase runs on the shard's
        own persistent worker pool *outside* the commit lock — the plans
        are validated (and re-placed on conflict) by the commit phase, so
        mid-compile commits by a cross-shard 2PC or a device event are
        harmless.  Only the commit phase holds the shard lock, which keeps
        it exactly the window cross-shard prepares ever wait on.
        """
        requests = list(requests)
        workers = self.workers if workers is None else max(1, int(workers))
        pipeline = self.controller.pipeline
        if workers > 1 and requests:
            started = time.perf_counter()
            with self.lock:
                service = pipeline.parallel_service(workers)
            results = service.compile_batch(requests)
            reports = []
            with self.lock:
                for request, result in zip(requests, results):
                    report = PipelineReport(
                        program_name=request.resolved_name()
                    )
                    pipeline.commit_speculative_result(
                        request, result, report, started
                    )
                    if report.succeeded:
                        self.controller.deployed[report.program_name] = (
                            report.deployed
                        )
                    reports.append(report)
        else:
            with self.lock:
                reports = self.controller.deploy_many(requests,
                                                      workers=workers)
        self.stats.increment(
            "deploys", sum(1 for r in reports if r.succeeded)
        )
        return reports

    def remove(self, name: str, lazy: bool = True) -> SynthesisDelta:
        with self.lock:
            delta = self.controller.remove(name, lazy=lazy)
            self.stats.increment("removed")
            return delta

    def update(self, name: str, **kwargs) -> PipelineReport:
        with self.lock:
            return self.controller.runtime().update_program(name, **kwargs)

    def runtime(self, auto_migrate: Optional[bool] = None):
        return self.controller.runtime(auto_migrate=auto_migrate)

    # ------------------------------------------------------------------ #
    # observability / lifecycle
    # ------------------------------------------------------------------ #
    def deployed_programs(self) -> List[str]:
        return self.controller.deployed_programs()

    def summary(self) -> Dict[str, object]:
        summary: Dict[str, object] = dict(self.stats.summary())
        summary["programs"] = len(self.controller.deployed)
        summary["devices"] = len(self.view.devices)
        summary["epoch"] = self.view.allocation_epoch()
        return summary

    def close(self) -> None:
        self.controller.close()

    def __repr__(self) -> str:
        return (
            f"ControllerShard({self.shard_id!r}, "
            f"devices={len(self.view.devices)}, "
            f"programs={len(self.controller.deployed)})"
        )
