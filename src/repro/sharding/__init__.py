"""Controller sharding: partitioned topology regions + cross-shard 2PC.

The control-plane scale-out layer.  A fabric is partitioned into regions
(:class:`~repro.topology.partition.PartitionMap` — per-pod by default),
each served by a :class:`ControllerShard` with its own plan cache, worker
pool and runtime manager over a shard-local topology view; the
:class:`ShardCoordinator` routes deployments, drives the cross-shard
two-phase commit for programs whose traffic spans regions, and escalates
migrations a shard cannot solve inside its own view.

A whole-fabric single shard is the degenerate default, so sharding is
strictly additive: every existing entry point (:class:`~repro.core.ClickINC`,
:class:`~repro.core.INCService`) behaves exactly as before.
"""

from repro.sharding.coordinator import (
    CROSS_SHARD,
    ShardCoordinator,
    ShardedEventReport,
)
from repro.sharding.shard import ControllerShard

__all__ = [
    "CROSS_SHARD",
    "ControllerShard",
    "ShardCoordinator",
    "ShardedEventReport",
]
