"""The shard coordinator: routing, cross-shard 2PC, runtime escalation.

The :class:`ShardCoordinator` is the control-plane scale-out story: it
partitions a fabric into regions (:mod:`repro.topology.partition`), runs
one :class:`~repro.sharding.shard.ControllerShard` per region — each with
its own plan cache, worker pool and runtime manager — and keeps the whole
thing serial-equivalent with a deliberately small commit protocol:

* **Intra-shard programs** (all traffic endpoints in one region) compile,
  place and commit entirely inside their shard, holding only that shard's
  commit lock — shards proceed in parallel with no global lock.
* **Cross-shard programs** go through a **two-phase commit**: the
  speculative phase compiles and places commit-free against an
  epoch-tagged snapshot of every touched shard's allocation state (no
  locks held); the prepare phase then takes exactly the touched shards'
  locks in deterministic order and asks each shard to validate the plan
  against its own devices — an unchanged ``(shard, epoch)`` stamp is a
  one-integer yes vote, a drifted shard triggers the fingerprint sweep
  restricted to its view.  Any conflict **aborts** the speculative plan —
  nothing was committed, so the abort leaves no residue by construction —
  and the commit wave falls back to a serial re-place under the held
  locks, which is exactly what the equivalent serial schedule would have
  produced.  The commit wave itself is the pipeline's existing
  validate-or-replace machinery (:meth:`CompilationPipeline
  .commit_speculative_result`), so the cross-shard path adds protocol, not
  new commit code.
* **Runtime events** route to the shards that can see the subject device
  (one shard for region-local devices, every shard for border devices);
  untouched shards see no migration work, no epoch bumps and no cache
  invalidation.  A migration the owning shard cannot re-place inside its
  own view **escalates to the coordinator**, which retries on the full
  fabric — the program becomes coordinator-owned (cross-shard) if that
  succeeds.

Because every shard view shares ``Device`` objects with the full-fabric
topology the coordinator's own controller uses, resource accounting needs
no reconciliation: a commit anywhere is immediately visible to every
placement that can see the device.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.controller import ClickINC
from repro.core.parallel import SpeculativeResult
from repro.core.pipeline import DeployRequest, PipelineReport
from repro.core.service import ServiceStats, deadline_report
from repro.exceptions import DeploymentError
from repro.runtime.manager import MigrationReport
from repro.sharding.shard import ControllerShard
from repro.synthesis.incremental import SynthesisDelta
from repro.topology.network import NetworkTopology
from repro.topology.partition import PartitionMap, partition_by_pod

__all__ = ["ShardCoordinator", "ShardedEventReport", "CROSS_SHARD"]

#: Owner tag for programs committed through the cross-shard path.
CROSS_SHARD = "<cross-shard>"


@dataclass
class ShardedEventReport:
    """Outcome of one fabric event (fail/drain) across the shards it hit."""

    kind: str
    subject: str
    #: per-shard migration outcomes, only for shards that see the device
    shard_reports: Dict[str, MigrationReport] = field(default_factory=dict)
    #: migration of coordinator-owned (cross-shard) programs
    cross_report: Optional[MigrationReport] = None
    #: programs a shard could not re-place inside its own view that the
    #: coordinator successfully re-homed on the full fabric
    escalated: List[str] = field(default_factory=list)

    def migrated(self) -> List[str]:
        """Every program that ended up on new devices, coordinator-wide."""
        moved: List[str] = []
        for report in self.shard_reports.values():
            moved.extend(report.migrated)
        if self.cross_report is not None:
            moved.extend(self.cross_report.migrated)
        moved.extend(self.escalated)
        return sorted(set(moved))

    def summary(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "subject": self.subject,
            "shards": {sid: report.summary()
                       for sid, report in sorted(self.shard_reports.items())},
            "cross": (self.cross_report.summary()
                      if self.cross_report is not None else None),
            "escalated": list(self.escalated),
            "migrated": self.migrated(),
        }


class ShardCoordinator:
    """Partitioned controller shards plus the cross-shard commit protocol.

    Parameters
    ----------
    topology:
        The full fabric.  Shard views are derived from it and share its
        ``Device``/``Link`` objects.
    partition:
        An explicit :class:`PartitionMap`; defaults to
        :func:`partition_by_pod` (one shard per pod, cores on the border —
        degenerating to a single whole-fabric shard on unlabelled
        topologies).
    shard_workers:
        Per-shard process-pool width for speculative compile waves.
    memo:
        A :class:`~repro.placement.memo.SharedPlacementMemo` shared by
        every shard *and* the coordinator's own full-fabric controller; one
        is created when omitted.  Memo keys are name-blind sub-tree
        signatures over shared ``Device`` content, so shard A's pod table
        warms the isomorphic pods of every other shard, and the memo's
        per-key single-flight guard keeps concurrent shard threads from
        deriving the same table twice.
    memo_path:
        Persist the shared memo to this file on :meth:`close` and restore
        it (with topology/fingerprint validation) here, so a coordinator
        restart skips the cold-solve memo derivations that still match the
        live allocation state.
    controller_kwargs:
        Forwarded to every shard's (and the coordinator's own)
        :class:`ClickINC` controller.
    """

    def __init__(self, topology: NetworkTopology,
                 partition: Optional[PartitionMap] = None, *,
                 shard_workers: int = 1, cross_workers: int = 0,
                 memo=None, memo_path: Optional[str] = None,
                 **controller_kwargs) -> None:
        from repro.placement.memo import SharedPlacementMemo

        self.topology = topology
        self.partition = partition or partition_by_pod(topology)
        self.memo = memo if memo is not None else SharedPlacementMemo()
        self.memo_path = memo_path
        if memo_path is not None and hasattr(self.memo, "restore"):
            import os

            if os.path.exists(memo_path):
                # validate against the full fabric: every shard view shares
                # its Device objects, so fabric-valid entries are valid in
                # every shard
                self.memo.restore(memo_path, topology)
        views = self.partition.shard_views(topology)
        self.shards: Dict[str, ControllerShard] = {
            shard_id: ControllerShard(shard_id, view, workers=shard_workers,
                                      memo=self.memo, **controller_kwargs)
            for shard_id, view in views.items()
        }
        #: the coordinator's own full-fabric controller: cross-shard
        #: programs compile, commit and run through it
        self.inter = ClickINC(topology, memo=self.memo, **controller_kwargs)
        self.stats = ServiceStats()
        # one counter bag per shard, shared between the shard object and the
        # coordinator's per-shard breakdown — incremented exactly once
        for shard_id, shard in self.shards.items():
            self.stats.per_shard[shard_id] = shard.stats
        #: cross-shard speculative compiles run on the inter pipeline's
        #: worker pool when > 1 (0/1 keeps the historical inline path);
        #: worker-side trace spans then stitch across the process boundary
        #: even for 2PC deployments
        self.cross_workers = max(0, int(cross_workers))
        # compile_batch on the shared inter pipeline is not reentrant; the
        # lock serialises only the speculative phase of concurrent
        # cross-shard deploys (lock-free phase 1 work, never held together
        # with the inter/shard commit locks)
        self._cross_compile_lock = threading.Lock()
        self.obs = self.inter.obs
        registry = self.obs.registry
        registry.register_counters("clickinc_service", self.stats)
        for shard_id, shard in self.shards.items():
            registry.register_counters("clickinc_shard", shard.stats,
                                       labels={"shard": shard_id})
        self._2pc_hist = registry.histogram(
            "clickinc_2pc_phase_seconds",
            "Seconds per cross-shard two-phase-commit phase",
            ("phase",))
        #: program name -> owning shard id, or :data:`CROSS_SHARD`
        self._owner: Dict[str, str] = {}
        self._registry_lock = threading.Lock()
        #: serialises every mutation of the coordinator's own full-fabric
        #: controller (two cross-shard commits touching *disjoint* shard
        #: sets would otherwise race on the shared ``inter`` synthesizer /
        #: emulator).  Always acquired *before* any shard lock, and never
        #: from intra-shard paths, so the global acquisition order
        #: (inter lock -> sorted shard locks) stays deadlock-free.
        self._inter_lock = threading.RLock()
        #: test hook: called between the speculative phase and the prepare
        #: phase of a cross-shard commit (the window in which a concurrent
        #: intra-shard commit forces an aborted prepare)
        self._pre_prepare_hook = None
        #: test hook: called between a clean prepare vote and the commit
        #: wave, with the touched shards' locks held (the window in which a
        #: passing deadline must abort instead of committing late)
        self._post_prepare_hook = None

    # ------------------------------------------------------------------ #
    # routing
    # ------------------------------------------------------------------ #
    def shards_for_request(self, request: DeployRequest) -> List[str]:
        """Sorted shard ids the request's traffic endpoints touch.

        Raises :class:`~repro.exceptions.TopologyError` for unknown host
        groups or groups hanging off border devices; the deploy entry
        points catch that and report it per-request (:meth:`_route`).
        """
        groups = list(request.source_groups) + [request.destination_group]
        return self.partition.regions_of_groups(self.topology, groups)

    @staticmethod
    def _failed_report(name: str, error: str,
                       stage: str = "validation") -> PipelineReport:
        report = PipelineReport(program_name=name)
        report.succeeded = False
        report.error = error
        report.failed_stage = stage
        return report

    def _route(self, request: DeployRequest):
        """``(touched shards, None)`` or ``(None, failed report)``.

        Un-routable requests (unknown host groups, groups on the border)
        fail like any other bad request — captured in a report, never
        raised — so one of them cannot abort a whole batch.
        """
        try:
            return self.shards_for_request(request), None
        except Exception as exc:
            return None, self._failed_report(request.resolved_name(),
                                             str(exc))

    def owner_of(self, name: str) -> Optional[str]:
        """The shard owning *name*, :data:`CROSS_SHARD`, or None."""
        return self._owner.get(name)

    def controller_for(self, name: str) -> ClickINC:
        """The controller actually hosting a deployed program."""
        owner = self._owner.get(name)
        if owner is None:
            raise DeploymentError(f"program {name!r} is not deployed")
        if owner == CROSS_SHARD:
            return self.inter
        return self.shards[owner].controller

    def shards_seeing_device(self, device: str) -> List[str]:
        """Sorted ids of every shard whose view contains *device*."""
        return sorted(sid for sid, shard in self.shards.items()
                      if shard.sees_device(device))

    @contextmanager
    def _locks(self, shard_ids: Sequence[str]):
        """Hold the commit locks of *shard_ids*, acquired in sorted order.

        Deterministic ordering is the deadlock-freedom argument: every
        multi-shard operation acquires the same global order, so two
        overlapping lock sets can never wait on each other cyclically.
        """
        acquired: List[ControllerShard] = []
        try:
            for shard_id in sorted(set(shard_ids)):
                shard = self.shards[shard_id]
                shard.lock.acquire()
                acquired.append(shard)
            yield
        finally:
            for shard in reversed(acquired):
                shard.lock.release()

    def _claim(self, name: str) -> Optional[str]:
        """Reserve *name* coordinator-wide; returns an error string if taken."""
        with self._registry_lock:
            if name in self._owner:
                return f"program {name!r} is already deployed"
            self._owner[name] = "<pending>"
            return None

    def _resolve_claim(self, name: str, owner: Optional[str]) -> None:
        """Finalise (owner given) or release (None) a pending claim."""
        with self._registry_lock:
            if owner is None:
                self._owner.pop(name, None)
            else:
                self._owner[name] = owner

    # ------------------------------------------------------------------ #
    # deployment
    # ------------------------------------------------------------------ #
    def deploy(self, request: DeployRequest,
               deadline: Optional[float] = None) -> PipelineReport:
        """Deploy one request, routed to its shard or the cross-shard path.

        Failures are captured in the returned report (``succeeded=False``,
        ``error``, ``failed_stage``), exactly as in ``deploy_many``.

        *deadline* (absolute ``time.monotonic()``) applies to cross-shard
        requests: a deadline passing inside the two-phase commit — before
        the prepare, or between a clean prepare vote and the commit wave —
        **aborts** the commit instead of landing it late.  Nothing has been
        committed at either abort point, so the abort is residue-free by the
        same construction as a conflict abort.
        """
        touched, route_error = self._route(request)
        if route_error is not None:
            return route_error
        if len(touched) == 1:
            return self.deploy_wave(touched[0], [request])[0]
        return self._deploy_cross_claimed(request, touched, deadline=deadline)

    def _deploy_cross_claimed(self, request: DeployRequest,
                              touched: Sequence[str],
                              deadline: Optional[float] = None
                              ) -> PipelineReport:
        """Claim the name, run the 2PC, settle (or release) the claim."""
        name = request.resolved_name()
        claim_error = self._claim(name)
        if claim_error is not None:
            return self._failed_report(name, claim_error)
        try:
            report = self._deploy_cross(request, touched, deadline=deadline)
        except Exception:
            self._resolve_claim(name, None)
            raise
        self._resolve_claim(name, CROSS_SHARD if report.succeeded else None)
        return report

    def deploy_wave(self, shard_id: str, requests: Sequence[DeployRequest]
                    ) -> List[PipelineReport]:
        """Deploy one shard's wave: claim names, dispatch, settle ownership.

        The caller has already routed *requests* to *shard_id* (all traffic
        endpoints inside that region).  Holding only the shard's own commit
        lock, the wave runs through the shard's pipeline and worker pool —
        concurrently with every other shard's waves.  Reports come back in
        request order; duplicates of an already-deployed name fail at the
        ``validation`` stage without dispatch.
        """
        requests = list(requests)
        reports: List[Optional[PipelineReport]] = [None] * len(requests)
        dispatch: List[int] = []
        for index, request in enumerate(requests):
            name = request.resolved_name()
            claim_error = self._claim(name)
            if claim_error is not None:
                reports[index] = self._failed_report(name, claim_error)
            else:
                dispatch.append(index)
        if dispatch:
            wave = [requests[i] for i in dispatch]
            settled: List[str] = []
            try:
                for i, report in zip(dispatch,
                                     self.shards[shard_id].deploy_many(wave)):
                    reports[i] = report
                    self._resolve_claim(
                        report.program_name,
                        shard_id if report.succeeded else None,
                    )
                    settled.append(report.program_name)
            finally:
                # a dispatch crash must not strand '<pending>' claims —
                # they would block the names forever
                leftover = {requests[i].resolved_name()
                            for i in dispatch} - set(settled)
                for name in leftover:
                    self._resolve_claim(name, None)
        return reports  # type: ignore[return-value]

    def deploy_many(self, requests: Sequence[DeployRequest],
                    parallel_shards: bool = True) -> List[PipelineReport]:
        """Deploy a batch: per-shard waves in parallel, then cross-shard.

        Requests are grouped by owning shard; each group runs as one wave
        through its shard's own pipeline (and worker pool), concurrently
        with the other shards' waves — the commit phases hold only their
        own shard's lock.  Requests spanning shards run afterwards, in
        request order, through the two-phase commit.  Reports come back in
        request order; per-request failures are captured, not raised.
        """
        requests = list(requests)
        reports: List[Optional[PipelineReport]] = [None] * len(requests)
        by_shard: Dict[str, List[int]] = {}
        cross: List[tuple] = []                  # (index, touched shards)
        for index, request in enumerate(requests):
            touched, route_error = self._route(request)
            if route_error is not None:
                reports[index] = route_error
            elif len(touched) == 1:
                by_shard.setdefault(touched[0], []).append(index)
            else:
                cross.append((index, touched))

        def run_shard_wave(shard_id: str, indices: List[int]) -> None:
            wave = [requests[i] for i in indices]
            for i, report in zip(indices, self.deploy_wave(shard_id, wave)):
                reports[i] = report

        if parallel_shards and len(by_shard) > 1:
            from concurrent.futures import ThreadPoolExecutor

            with ThreadPoolExecutor(max_workers=len(by_shard)) as pool:
                futures = [
                    pool.submit(run_shard_wave, shard_id, indices)
                    for shard_id, indices in by_shard.items()
                ]
                for future in futures:
                    future.result()
        else:
            for shard_id, indices in by_shard.items():
                run_shard_wave(shard_id, indices)

        for index, touched in cross:
            reports[index] = self._deploy_cross_claimed(requests[index],
                                                        touched)

        self.stats.record_wave(
            len(requests),
            failures=sum(1 for r in reports if r is not None and not r.succeeded),
        )
        return reports  # type: ignore[return-value]

    # ------------------------------------------------------------------ #
    # the cross-shard two-phase commit
    # ------------------------------------------------------------------ #
    def _deploy_cross(self, request: DeployRequest,
                      touched: Sequence[str],
                      deadline: Optional[float] = None) -> PipelineReport:
        """Speculative place → per-shard prepare → atomic commit wave."""
        started = time.perf_counter()
        pipeline = self.inter.pipeline
        tracer = self.obs.tracer
        ctx = request.trace
        report = PipelineReport(program_name=request.resolved_name())

        # phase 1 (no locks): pure compile + commit-free placement against
        # an epoch-tagged snapshot of every touched shard's allocations.
        # The epoch snapshot is taken BEFORE the search: the search reads
        # the live shared topology lock-free, so only an epoch unchanged
        # across the whole search window proves no touched shard committed
        # mid-search (post-search fingerprints alone could match live
        # values the search never saw).  A snapshot taken before the pool
        # dispatch is conservative the same way: any mid-search commit
        # moves an epoch and turns into a prepare abort + serial re-place.
        spec_start = time.perf_counter()
        if self.cross_workers > 1:
            shard_epochs = {shard_id: self.shards[shard_id].allocation_epoch()
                            for shard_id in touched}
            with self._cross_compile_lock:
                service = pipeline.parallel_service(self.cross_workers)
                result = service.compile_batch([request])[0]
            result.via = "cross-shard"
            if result.plan is not None:
                result.plan.shard_epochs = shard_epochs
        else:
            try:
                program, records = pipeline.compile_stages(request)
            except Exception as exc:
                result = SpeculativeResult(
                    index=0, error=str(exc),
                    failed_stage=getattr(exc, "pipeline_stage", "frontend"),
                    via="cross-shard",
                )
            else:
                result = SpeculativeResult(index=0, program=program,
                                           records=records, via="cross-shard")
                shard_epochs = {shard_id:
                                self.shards[shard_id].allocation_epoch()
                                for shard_id in touched}
                try:
                    plan = self.inter.placer.place(
                        pipeline.placement_request(program, request)
                    )
                except Exception as exc:
                    # advisory: the commit wave re-places under the locks
                    result.error = str(exc)
                    result.failed_stage = "placement"
                else:
                    plan.shard_epochs = shard_epochs
                    result.plan = plan
        spec_s = time.perf_counter() - spec_start
        self._2pc_hist.labels("speculative").observe(spec_s)
        tracer.emit(ctx, "2pc.speculative", spec_s,
                    shards=list(touched), pooled=self.cross_workers > 1)

        if self._pre_prepare_hook is not None:
            self._pre_prepare_hook()

        # the deadline gates lock acquisition: a 2PC already past it must
        # not take the touched shards' locks just to commit late
        if deadline is not None and time.monotonic() > deadline:
            self.stats.increment("deadline_aborts")
            self.obs.events.emit("deadline_abort", where="pre-prepare",
                                 program=report.program_name,
                                 shards=list(touched))
            return deadline_report(
                report.program_name,
                "the submission's deadline passed before the cross-shard "
                "prepare; the two-phase commit was aborted (nothing was "
                "committed)",
            )

        # phase 2 (inter lock + touched shards' locks only): validate-or-
        # abort prepare, then the commit wave.  Untouched shards keep
        # committing throughout.
        with self._inter_lock, self._locks(touched):
            if result.plan is not None:
                prepare_start = time.perf_counter()
                conflicts = self._prepare(result.plan, touched)
                prepare_s = time.perf_counter() - prepare_start
                self._2pc_hist.labels("prepare").observe(prepare_s)
                tracer.emit(ctx, "2pc.prepare", prepare_s,
                            shards=list(touched),
                            conflicts=sorted(conflicts))
                if conflicts:
                    # abort the speculative plan.  Nothing has been
                    # committed anywhere, so the abort leaves every shard's
                    # allocation state and plan cache untouched by
                    # construction; the commit wave below re-places
                    # serially under the held locks instead.
                    self.stats.increment("aborted_prepares")
                    for shard_id in conflicts:
                        self.shards[shard_id].stats.increment("aborted_prepares")
                    self.obs.events.emit(
                        "aborted_prepare", program=report.program_name,
                        conflicts={shard: list(devs)
                                   for shard, devs in conflicts.items()})
                    result.plan = None
            if self._post_prepare_hook is not None:
                self._post_prepare_hook()
            if deadline is not None and time.monotonic() > deadline:
                # the deadline passed between the prepare vote and the
                # commit wave.  Every shard voted, but nothing has been
                # committed yet, so aborting here is as residue-free as a
                # conflict abort — the locks release with every shard's
                # allocation state and plan cache byte-identical.
                self.stats.increment("deadline_aborts")
                self.obs.events.emit("deadline_abort", where="post-prepare",
                                     program=report.program_name,
                                     shards=list(touched))
                return deadline_report(
                    report.program_name,
                    "the submission's deadline passed between the prepare "
                    "vote and the commit wave; the two-phase commit was "
                    "aborted (nothing was committed)",
                )
            commit_start = time.perf_counter()
            report = pipeline.commit_speculative_result(
                request, result, report, started
            )
            commit_s = time.perf_counter() - commit_start
            self._2pc_hist.labels("commit").observe(commit_s)
            tracer.emit(ctx, "2pc.commit", commit_s,
                        shards=list(touched), succeeded=report.succeeded)
            if report.succeeded:
                self.inter.deployed[report.program_name] = report.deployed
                self.stats.increment("cross_shard_commits")
                for shard_id in touched:
                    self.shards[shard_id].stats.increment("cross_shard_commits")
        return report

    def _prepare(self, plan, touched: Sequence[str]) -> Dict[str, List[str]]:
        """Ask every touched shard to vote on *plan*: commit or abort.

        The vote is one integer comparison per shard: the shard view's
        live allocation epoch against the plan's ``(shard, epoch)`` stamp,
        which was taken **before** the speculative search started.  Equal
        epochs prove nothing in the shard changed across the whole search
        window, so the plan is exactly what a serial placement under the
        held locks would produce.  Any drift is an abort — the epoch may
        have moved for a device the plan never consulted, but the search
        read live shared state, so a mid-search commit could have fed it a
        mix of pre- and post-commit views that post-hoc fingerprints
        cannot distinguish; aborting is the cheap, checkable answer (the
        commit wave just re-places under the locks).  The fingerprint
        sweep restricted to the shard's devices
        (:meth:`DPPlacer.validate`) only *names* the drifted devices for
        the abort record.  Returns ``shard id -> drifted devices`` — empty
        means every shard voted to commit.
        """
        conflicts: Dict[str, List[str]] = {}
        for shard_id in sorted(touched):
            shard = self.shards[shard_id]
            if plan.shard_epochs.get(shard_id) == shard.allocation_epoch():
                continue
            changed = shard.controller.placer.validate(
                plan, restrict=set(shard.view.devices)
            )
            conflicts[shard_id] = changed or ["<epoch>"]
        return conflicts

    # ------------------------------------------------------------------ #
    # removal
    # ------------------------------------------------------------------ #
    def remove(self, name: str, lazy: bool = True) -> SynthesisDelta:
        """Remove a program from whichever controller hosts it."""
        owner = self._owner.get(name)
        if owner is None or owner == "<pending>":
            raise DeploymentError(f"program {name!r} is not deployed")
        if owner != CROSS_SHARD:
            delta = self.shards[owner].remove(name, lazy=lazy)
            self.stats.increment("removed")
            with self._registry_lock:
                self._owner.pop(name, None)
            return delta
        deployed = self.inter.deployed.get(name)
        used = deployed.devices() if deployed is not None else []
        touched = sorted({
            shard_id for device in used
            for shard_id in self.shards_seeing_device(device)
        })
        with self._inter_lock, self._locks(touched):
            delta = self.inter.remove(name, lazy=lazy)
            # the release restored allocation states the shards' plan caches
            # may have stamped entries against before the cross-shard commit;
            # those can no longer validate, so evict them shard-locally too
            for shard_id in touched:
                shard = self.shards[shard_id]
                shard.controller.cache.prune_stale_plans(
                    shard.view.device_fingerprints(),
                    devices=[d for d in used if shard.sees_device(d)],
                )
                shard.controller.placer.prune_memo(
                    [d for d in used if shard.sees_device(d)]
                )
        self.stats.increment("removed")
        with self._registry_lock:
            self._owner.pop(name, None)
        return delta

    # ------------------------------------------------------------------ #
    # rolling updates
    # ------------------------------------------------------------------ #
    def update(self, name: str, **kwargs) -> PipelineReport:
        """Atomically swap a program's version on its owning controller."""
        owner = self._owner.get(name)
        if owner is None or owner == "<pending>":
            raise DeploymentError(f"program {name!r} is not deployed")
        if owner != CROSS_SHARD:
            report = self.shards[owner].update(name, **kwargs)
        else:
            deployed = self.inter.deployed[name]
            touched = sorted({
                shard_id for device in deployed.devices()
                for shard_id in self.shards_seeing_device(device)
            })
            with self._inter_lock, self._locks(touched):
                report = self.inter.runtime().update_program(name, **kwargs)
        self.stats.increment("updates")
        return report

    # ------------------------------------------------------------------ #
    # runtime event routing
    # ------------------------------------------------------------------ #
    def fail_device(self, name: str) -> ShardedEventReport:
        """Fail a device: route migration to the shards that see it.

        Each shard seeing the device migrates its own programs inside its
        view; coordinator-owned (cross-shard) programs migrate through the
        full-fabric controller; shards that cannot see the device do no
        work at all — no migrations, no epoch bumps, no cache
        invalidation.  A shard migration that rolls back (no capacity left
        inside the view) escalates to the coordinator, which re-homes the
        affected programs on the full fabric.
        """
        return self._device_event(name, kind="fail", state_lost=True)

    def drain_device(self, name: str) -> ShardedEventReport:
        """Drain a device for maintenance; register/table state is kept."""
        return self._device_event(name, kind="drain", state_lost=False)

    def restore_device(self, name: str) -> bool:
        """Bring a failed/drained device back, refreshing every watcher."""
        changed = False
        with self._inter_lock, self._locks(self.shards_seeing_device(name)):
            for shard_id in self.shards_seeing_device(name):
                changed = (self.shards[shard_id].runtime().restore_device(name)
                           or changed)
            # always refresh the inter controller's monitor too: a shard's
            # restore already flipped the shared device, and a stale inter
            # baseline would re-report the recovery on its next poll()
            changed = self.inter.runtime().restore_device(name) or changed
        return changed

    def _device_event(self, name: str, kind: str,
                      state_lost: bool) -> ShardedEventReport:
        seeing = self.shards_seeing_device(name)
        if not seeing and name not in self.topology.devices:
            raise DeploymentError(f"unknown device {name!r}")
        event = ShardedEventReport(kind=kind, subject=name)
        # migration *work* routes to the shards seeing the device, but the
        # lock set is every shard: re-placing a cross-shard program (and
        # escalation) searches the full fabric, so it may allocate on
        # devices of shards that never see the failed one — committing
        # there without their lock would race their intra-shard waves.
        # Untouched shards are only paused, never worked: no migrations,
        # no epoch bumps, no cache invalidation.
        with self._inter_lock, self._locks(self.shards):
            for shard_id in seeing:
                manager = self.shards[shard_id].runtime()
                report = (manager.fail_device(name) if state_lost
                          else manager.drain_device(name))
                event.shard_reports[shard_id] = report
            inter_manager = self.inter.runtime()
            event.cross_report = (
                inter_manager.fail_device(name) if state_lost
                else inter_manager.drain_device(name)
            )
            for shard_id in seeing:
                report = event.shard_reports[shard_id]
                if report.rolled_back and report.affected:
                    event.escalated.extend(
                        self._escalate(shard_id, report, name, state_lost)
                    )
        migrated = event.migrated()
        self.stats.increment("migrations", len(migrated))
        for shard_id in seeing:
            self.shards[shard_id].stats.increment(
                "migrations", len(event.shard_reports[shard_id].migrated)
            )
        return event

    def _escalate(self, shard_id: str, report: MigrationReport,
                  subject: str, state_lost: bool) -> List[str]:
        """Re-home programs a shard could not re-place inside its view.

        The shard rolled its migration back, so every affected program is
        committed exactly as before the event (possibly still occupying the
        failed device).  For each one, remove it from the shard and retry
        placement on the coordinator's full-fabric controller — devices the
        shard view cannot see may still have capacity and paths.  On
        success the program becomes coordinator-owned; on failure the
        shard's rolled-back state is reinstalled unchanged.
        """
        shard = self.shards[shard_id]
        escalated: List[str] = []
        for owner in list(report.affected):
            deployed = shard.controller.deployed.get(owner)
            if deployed is None:
                continue
            request = DeployRequest(
                source_groups=list(deployed.source_groups),
                destination_group=deployed.destination_group,
                name=owner,
                program=deployed.plan.block_dag.program,
                traffic_rates=dict(deployed.traffic_rates)
                if deployed.traffic_rates else None,
            )
            snapshot = shard.controller.emulator.snapshot_owner_state(
                owner, skip_devices=(subject,) if state_lost else ()
            )
            shard.controller.remove(owner)
            try:
                run_report = self.inter.pipeline.run(request)
            except Exception:
                # the full fabric cannot host it either: restore the
                # shard's rolled-back committed state untouched
                shard.controller.pipeline.reinstall(deployed)
                shard.controller.deployed[owner] = deployed
                shard.controller.emulator.restore_owner_state(owner, snapshot)
                continue
            self.inter.deployed[owner] = run_report.deployed
            self.inter.emulator.restore_owner_state(owner, snapshot)
            with self._registry_lock:
                self._owner[owner] = CROSS_SHARD
            escalated.append(owner)
        return escalated

    # ------------------------------------------------------------------ #
    # traffic + inspection
    # ------------------------------------------------------------------ #
    def run_traffic(self, name: str, packets, **kwargs):
        """Run packets through the emulator of the controller hosting
        *name* (each controller emulates the programs it committed)."""
        return self.controller_for(name).run_traffic(packets, **kwargs)

    def deployed_programs(self) -> List[str]:
        with self._registry_lock:
            return sorted(n for n, o in self._owner.items()
                          if o != "<pending>")

    def placement_summary(self, name: str) -> Dict[str, object]:
        return self.controller_for(name).placement_summary(name)

    def coordinator_summary(self) -> Dict[str, object]:
        """Coordinator-wide counters plus every shard's breakdown."""
        summary = self.stats.summary()
        summary["shards"] = {shard_id: shard.summary()
                             for shard_id, shard in sorted(self.shards.items())}
        summary["cross_shard_programs"] = sum(
            1 for owner in self._owner.values() if owner == CROSS_SHARD
        )
        if hasattr(self.memo, "summary"):
            summary["memo"] = self.memo.summary()
        return summary

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Release every shard's worker pool and the coordinator's own.

        With ``memo_path`` set the shared memo is persisted here
        (best-effort, like the controller's own save path).
        """
        for shard in self.shards.values():
            shard.close()
        self.inter.close()
        if self.memo_path is not None and hasattr(self.memo, "save"):
            try:
                self.memo.save(self.memo_path, self.topology)
            except Exception:
                pass

    def __enter__(self) -> "ShardCoordinator":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"ShardCoordinator(shards={sorted(self.shards)}, "
            f"programs={len(self.deployed_programs())})"
        )
