"""Distributed request tracing for the ClickINC control plane.

A *trace* is the span tree of one submission: queue wait → speculative
wave → worker-pool compile → commit (or cross-shard 2PC prepare/commit).
The design is shaped by the two process boundaries a submission crosses:

* **asyncio admission queue** — the :class:`TraceContext` (two small
  strings) is attached to the ``DeployRequest`` itself, so it follows
  the request through coalescing, waves and executor hops without any
  task-local state.
* **worker-pool pickle boundary** — workers have no access to the
  parent's :class:`Tracer`.  They record spans into a plain
  :class:`SpanCollector` (picklable :class:`SpanRecord` dataclasses that
  ride back on ``SpeculativeResult.trace_spans``) and the parent stitches
  them into the live trace with :meth:`Tracer.add_spans` — exactly the
  channel placement-memo deltas use.

Span ids embed the recording process id, so a stitched tree shows *where*
each span ran.  Timestamps are wall-clock (``time.time``) so worker and
parent timelines line up; durations are measured with ``perf_counter``.
Completed traces live in a bounded ring and export as Chrome trace-event
JSON (load the dict from ``GET /v1/traces/<id>`` in ``chrome://tracing``
or Perfetto).
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional
from uuid import uuid4

__all__ = [
    "TraceContext",
    "SpanRecord",
    "SpanCollector",
    "Tracer",
    "get_tracer",
]

_SPAN_SEQ = itertools.count(1)


def _new_span_id() -> str:
    return f"{os.getpid():x}.{next(_SPAN_SEQ):x}"


def _proc_name() -> str:
    return f"pid-{os.getpid()}"


@dataclass(frozen=True)
class TraceContext:
    """The propagated part of a trace: rides on ``DeployRequest.trace``.

    Frozen, tiny and picklable; never carries the span tree itself.
    """

    trace_id: str
    span_id: str

    def child(self) -> "TraceContext":
        return TraceContext(self.trace_id, _new_span_id())


@dataclass
class SpanRecord:
    """One completed span.  Picklable — workers ship lists of these."""

    trace_id: str
    span_id: str
    parent_id: Optional[str]
    name: str
    start_s: float          # wall clock (time.time)
    duration_s: float
    proc: str = ""
    attrs: Dict[str, object] = field(default_factory=dict)

    def summary(self) -> Dict[str, object]:
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start_s": round(self.start_s, 6),
            "duration_s": round(self.duration_s, 6),
            "proc": self.proc,
            "attrs": self.attrs,
        }


class SpanCollector:
    """Tracer-free span recording for worker processes.

    Built around the :class:`TraceContext` that arrived on the request;
    every recorded span is parented to it (or to a nested span).  The
    ``records`` list travels back to the parent process on
    ``SpeculativeResult.trace_spans``.
    """

    def __init__(self, ctx: TraceContext) -> None:
        self.ctx = ctx
        self.records: List[SpanRecord] = []
        self._proc = _proc_name()

    @contextmanager
    def span(self, name: str, parent: Optional[TraceContext] = None,
             **attrs: object):
        parent = parent or self.ctx
        child = parent.child()
        start_wall = time.time()
        start = time.perf_counter()
        try:
            yield child
        finally:
            self.records.append(SpanRecord(
                trace_id=child.trace_id, span_id=child.span_id,
                parent_id=parent.span_id, name=name, start_s=start_wall,
                duration_s=time.perf_counter() - start, proc=self._proc,
                attrs=dict(attrs)))


class _LiveTrace:
    __slots__ = ("trace_id", "name", "root_span_id", "start_wall",
                 "start_perf", "attrs", "spans")

    def __init__(self, trace_id: str, name: str, root_span_id: str,
                 attrs: Dict[str, object]) -> None:
        self.trace_id = trace_id
        self.name = name
        self.root_span_id = root_span_id
        self.start_wall = time.time()
        self.start_perf = time.perf_counter()
        self.attrs = attrs
        self.spans: List[SpanRecord] = []


class Tracer:
    """Owns live traces and a bounded ring of completed ones.

    All methods accept ``ctx=None`` and no-op, so instrumented code never
    branches on whether tracing is on — an untraced request simply
    carries no context.
    """

    def __init__(self, *, enabled: bool = True, capacity: int = 256) -> None:
        self.enabled = enabled
        self.capacity = capacity
        self._lock = threading.Lock()
        self._active: Dict[str, _LiveTrace] = {}
        self._ring: List[Dict[str, object]] = []
        # spans that arrived after their trace finished (late worker
        # stitches): folded into the ring entry when possible
        self.dropped_spans = 0

    # ------------------------------------------------------------------ #
    # trace lifecycle
    # ------------------------------------------------------------------ #
    def start_trace(self, name: str, **attrs: object) -> Optional[TraceContext]:
        if not self.enabled:
            return None
        ctx = TraceContext(uuid4().hex[:16], _new_span_id())
        with self._lock:
            self._active[ctx.trace_id] = _LiveTrace(
                ctx.trace_id, name, ctx.span_id, dict(attrs))
        return ctx

    def finish(self, ctx: Optional[TraceContext], status: str = "ok",
               **attrs: object) -> Optional[Dict[str, object]]:
        """Close the root span and move the trace into the ring."""
        if ctx is None:
            return None
        with self._lock:
            live = self._active.pop(ctx.trace_id, None)
            if live is None:
                return None
            duration = time.perf_counter() - live.start_perf
            live.attrs.update(attrs)
            live.spans.append(SpanRecord(
                trace_id=live.trace_id, span_id=live.root_span_id,
                parent_id=None, name=live.name, start_s=live.start_wall,
                duration_s=duration, proc=_proc_name(), attrs=dict(live.attrs)))
            done = {
                "trace_id": live.trace_id,
                "name": live.name,
                "status": status,
                "start_s": round(live.start_wall, 6),
                "duration_s": round(duration, 6),
                "attrs": live.attrs,
                "spans": live.spans,
            }
            self._ring.append(done)
            if len(self._ring) > self.capacity:
                del self._ring[: len(self._ring) - self.capacity]
            return done

    # ------------------------------------------------------------------ #
    # span recording
    # ------------------------------------------------------------------ #
    def _record(self, record: SpanRecord) -> None:
        with self._lock:
            live = self._active.get(record.trace_id)
            if live is not None:
                live.spans.append(record)
                return
            for done in reversed(self._ring):
                if done["trace_id"] == record.trace_id:
                    done["spans"].append(record)  # type: ignore[union-attr]
                    return
            self.dropped_spans += 1

    @contextmanager
    def span(self, ctx: Optional[TraceContext], name: str, **attrs: object):
        """A timed child span of *ctx*; yields the child context."""
        if ctx is None or not self.enabled:
            yield None
            return
        child = ctx.child()
        start_wall = time.time()
        start = time.perf_counter()
        try:
            yield child
        finally:
            self._record(SpanRecord(
                trace_id=child.trace_id, span_id=child.span_id,
                parent_id=ctx.span_id, name=name, start_s=start_wall,
                duration_s=time.perf_counter() - start, proc=_proc_name(),
                attrs=dict(attrs)))

    def emit(self, ctx: Optional[TraceContext], name: str, duration_s: float,
             end_s: Optional[float] = None,
             **attrs: object) -> Optional[TraceContext]:
        """Record an already-measured span ending at *end_s* (default now).

        Used where the start of the interval predates the code that can
        see the trace — e.g. queue wait measured from an enqueue
        timestamp.  Returns the new span's context so callers can parent
        further spans under it.
        """
        if ctx is None or not self.enabled:
            return None
        end = time.time() if end_s is None else end_s
        child = ctx.child()
        self._record(SpanRecord(
            trace_id=child.trace_id, span_id=child.span_id,
            parent_id=ctx.span_id, name=name, start_s=end - duration_s,
            duration_s=duration_s, proc=_proc_name(), attrs=dict(attrs)))
        return child

    def add_spans(self, records: Optional[Iterable[SpanRecord]]) -> int:
        """Stitch spans recorded elsewhere (worker processes) in."""
        if not records or not self.enabled:
            return 0
        added = 0
        for record in records:
            self._record(record)
            added += 1
        return added

    # ------------------------------------------------------------------ #
    # inspection / export
    # ------------------------------------------------------------------ #
    def get(self, trace_id: str) -> Optional[Dict[str, object]]:
        with self._lock:
            for done in reversed(self._ring):
                if done["trace_id"] == trace_id:
                    return done
        return None

    def completed(self) -> List[Dict[str, object]]:
        with self._lock:
            return list(self._ring)

    def summaries(self) -> List[Dict[str, object]]:
        """Newest-first digest of the completed-trace ring."""
        out = []
        for done in reversed(self.completed()):
            out.append({
                "trace_id": done["trace_id"],
                "name": done["name"],
                "status": done["status"],
                "start_s": done["start_s"],
                "duration_s": done["duration_s"],
                "spans": len(done["spans"]),  # type: ignore[arg-type]
                "attrs": done["attrs"],
            })
        return out

    def to_chrome(self, trace_id: str) -> Optional[Dict[str, object]]:
        """A completed trace as a Chrome trace-event JSON dict."""
        done = self.get(trace_id)
        if done is None:
            return None
        spans: List[SpanRecord] = list(done["spans"])  # type: ignore[arg-type]
        pids: Dict[str, int] = {}
        events: List[Dict[str, object]] = []
        for span in spans:
            pid = pids.setdefault(span.proc or "unknown", len(pids) + 1)
            events.append({
                "name": span.name,
                "ph": "X",
                "ts": round(span.start_s * 1e6, 3),
                "dur": round(span.duration_s * 1e6, 3),
                "pid": pid,
                "tid": pid,
                "cat": "clickinc",
                "args": dict(span.attrs,
                             span_id=span.span_id,
                             parent_id=span.parent_id),
            })
        for proc, pid in pids.items():
            events.append({
                "name": "process_name", "ph": "M", "pid": pid, "tid": pid,
                "args": {"name": proc},
            })
        return {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": {
                "trace_id": done["trace_id"],
                "name": done["name"],
                "status": done["status"],
            },
        }


_DEFAULT = Tracer()


def get_tracer() -> Tracer:
    """The process-wide default tracer."""
    return _DEFAULT
