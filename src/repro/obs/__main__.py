"""``python -m repro.obs`` — run a demo wave and dump the telemetry.

Deploys a handful of template programs (one of them cross-pod) through a
:class:`~repro.core.ClickINC` controller wired to a fresh
:class:`~repro.obs.Observability` hub, then prints the metrics registry,
the completed-trace ring and the event log.  ``--format prom`` prints the
Prometheus text exposition instead of JSON (the same bytes the gateway's
``GET /v1/metrics`` serves).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List

from repro.obs import Observability


def _demo(obs: Observability, workers: int) -> List[str]:
    from repro.core import ClickINC
    from repro.core.pipeline import DeployRequest
    from repro.lang.profile import default_profile
    from repro.topology.fattree import build_paper_emulation_topology

    topology = build_paper_emulation_topology()
    requests = []
    for index, app in enumerate(("KVS", "MLAgg", "KVS")):
        pod = index % 3
        requests.append(DeployRequest(
            source_groups=[f"pod{pod}(a)", f"pod{(pod + 1) % 3}(a)"],
            destination_group=f"pod{(pod + 2) % 3}(b)",
            name=f"{app.lower()}_obs_{index}",
            profile=default_profile(app),
            trace=obs.tracer.start_trace("deploy", program=f"{app.lower()}_obs_{index}"),
        ))
    with ClickINC(topology, obs=obs) as controller:
        reports = controller.deploy_many(requests, workers=workers)
    for request, report in zip(requests, reports):
        obs.tracer.finish(request.trace,
                          status="ok" if report.succeeded else "error")
    return [r.program_name for r in reports if r.succeeded]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="dump ClickINC telemetry after a demo deployment wave")
    parser.add_argument("--format", choices=("json", "prom"), default="json",
                        help="output format (default: json)")
    parser.add_argument("--workers", type=int, default=2,
                        help="worker processes for the demo wave")
    parser.add_argument("--traces", type=int, default=8,
                        help="max trace summaries to include")
    args = parser.parse_args(argv)

    obs = Observability()
    deployed = _demo(obs, workers=args.workers)

    if args.format == "prom":
        sys.stdout.write(obs.registry.render())
        return 0
    dump = {
        "deployed": deployed,
        "metrics": obs.registry.snapshot(),
        "traces": obs.tracer.summaries()[: args.traces],
        "events": obs.events.recent(),
    }
    print(json.dumps(dump, indent=2, sort_keys=True, default=str))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
