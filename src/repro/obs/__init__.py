"""Unified telemetry for the ClickINC control plane.

Three primitives and one hub:

* :class:`~repro.obs.metrics.MetricsRegistry` — labelled counters,
  gauges and fixed-bucket latency histograms, plus render-time
  collectors over the live :class:`~repro.core.stats.CounterMixin`
  bags.  Prometheus text exposition via ``render()``.
* :class:`~repro.obs.trace.Tracer` — per-submission span trees with a
  :class:`~repro.obs.trace.TraceContext` that propagates through the
  asyncio admission queue, across the worker-pool pickle boundary and
  through the cross-shard 2PC; bounded completed-trace ring with Chrome
  trace-event export.
* :class:`~repro.obs.events.EventLog` — a structured JSONL log of
  operational events (migrations, sheds, deadline aborts, device
  failures).

:class:`Observability` bundles the three.  Control-plane components take
an ``obs=`` keyword defaulting to the process-wide
:meth:`Observability.default` hub, so an ordinary deployment needs zero
configuration, tests can hand each fixture a private hub, and the
overhead benchmark can compare a fully-disabled hub against a live one.

``python -m repro.obs`` runs a small end-to-end deployment against a
fresh hub and dumps metrics, traces and events.
"""

from __future__ import annotations

from typing import Optional

from repro.obs.events import EventLog, get_event_log
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    MetricsRegistry,
    Sample,
    get_registry,
)
from repro.obs.profiling import (
    PlacementCounters,
    PlacementProfile,
    StageTimers,
    install_placement_collector,
)
from repro.obs.trace import (
    SpanCollector,
    SpanRecord,
    TraceContext,
    Tracer,
    get_tracer,
)

__all__ = [
    "DEFAULT_BUCKETS",
    "EventLog",
    "MetricsRegistry",
    "Observability",
    "PlacementCounters",
    "PlacementProfile",
    "Sample",
    "SpanCollector",
    "SpanRecord",
    "StageTimers",
    "TraceContext",
    "Tracer",
    "get_event_log",
    "get_registry",
    "get_tracer",
    "install_placement_collector",
]


class Observability:
    """Registry + tracer + event log, wired together.

    ``Observability()`` builds private live instances (what benchmarks
    and tests use); ``Observability(enabled=False)`` builds fully inert
    ones; :meth:`default` returns the shared process-wide hub over the
    module-level singletons that ``get_registry()`` / ``get_tracer()`` /
    ``get_event_log()`` also hand out.
    """

    _default: Optional["Observability"] = None

    def __init__(self, *, enabled: bool = True,
                 registry: Optional[MetricsRegistry] = None,
                 tracer: Optional[Tracer] = None,
                 events: Optional[EventLog] = None) -> None:
        self.registry = registry if registry is not None \
            else MetricsRegistry(enabled=enabled)
        self.tracer = tracer if tracer is not None else Tracer(enabled=enabled)
        self.events = events if events is not None else EventLog(enabled=enabled)
        install_placement_collector(self.registry)

    @property
    def enabled(self) -> bool:
        return self.registry.enabled or self.tracer.enabled

    @classmethod
    def default(cls) -> "Observability":
        if cls._default is None:
            cls._default = cls(registry=get_registry(), tracer=get_tracer(),
                               events=get_event_log())
        return cls._default

    @classmethod
    def disabled(cls) -> "Observability":
        return cls(enabled=False)
