"""A process-local metrics registry with Prometheus text exposition.

The registry is the single source of truth for ClickINC telemetry.  It
holds two kinds of state:

* **Instruments** — labelled :class:`Counter`, :class:`Gauge` and
  fixed-bucket :class:`Histogram` families created up front by the code
  that observes into them (``registry.histogram(...)`` is idempotent:
  the same family is returned to every caller).
* **Collectors** — callables sampled at *render* time.  Existing
  :class:`~repro.core.stats.CounterMixin` bags register themselves via
  :meth:`MetricsRegistry.register_counters`, so exposition always reads
  the live counter objects that ``service_summary()`` /
  ``coordinator_summary()`` / the gateway ``/v1/status`` views are built
  from — one code path, the views cannot drift.  Collectors are held by
  weak reference and vanish with their owner.

Two collectors producing the same ``(name, labels)`` sample are summed
(e.g. per-shard runtime managers reporting under one family).  Rendering
follows the Prometheus text format version 0.0.4: ``# HELP`` / ``# TYPE``
per family, cumulative ``_bucket{le=...}`` series plus ``_sum`` and
``_count`` for histograms, and backslash/quote/newline escaping in label
values.

A registry built with ``enabled=False`` keeps every instrument inert:
``inc`` / ``set`` / ``observe`` return immediately, which is what the
``bench_obs_overhead`` gate compares against.
"""

from __future__ import annotations

import bisect
import threading
import weakref
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "DEFAULT_BUCKETS",
    "Sample",
    "MetricsRegistry",
    "get_registry",
]

# Latency buckets in seconds: wide enough for a 2PC commit, fine enough
# for a warm cache hit.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


class Sample:
    """One exposition sample produced by a collector."""

    __slots__ = ("name", "labels", "value", "mtype", "help")

    def __init__(self, name: str, labels: Dict[str, str], value: float,
                 mtype: str = "counter", help: str = "") -> None:
        self.name = name
        self.labels = labels
        self.value = value
        self.mtype = mtype
        self.help = help


def _escape_label(value: object) -> str:
    return (str(value).replace("\\", "\\\\").replace("\n", "\\n")
            .replace('"', '\\"'))


def _escape_help(value: str) -> str:
    return value.replace("\\", "\\\\").replace("\n", "\\n")


def _format_value(value: float) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _labels_text(labels: Dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{key}="{_escape_label(val)}"'
                     for key, val in labels.items())
    return "{" + inner + "}"


class _Child:
    """Shared plumbing for one labelled time-series of a family."""

    __slots__ = ("_family",)

    def __init__(self, family: "_Family") -> None:
        self._family = family

    @property
    def _live(self) -> bool:
        return self._family.registry.enabled


class _CounterChild(_Child):
    __slots__ = ("value",)

    def __init__(self, family: "_Family") -> None:
        super().__init__(family)
        self.value = 0.0

    def inc(self, by: float = 1.0) -> None:
        if not self._live:
            return
        with self._family.registry._lock:
            self.value += by


class _GaugeChild(_Child):
    __slots__ = ("value", "function")

    def __init__(self, family: "_Family") -> None:
        super().__init__(family)
        self.value = 0.0
        self.function: Optional[Callable[[], float]] = None

    def set(self, value: float) -> None:
        if not self._live:
            return
        self.value = float(value)

    def set_function(self, fn: Callable[[], float]) -> None:
        """Sample *fn* at render time instead of storing a value."""
        self.function = fn

    def current(self) -> float:
        if self.function is not None:
            try:
                return float(self.function())
            except Exception:
                return self.value
        return self.value


class _HistogramChild(_Child):
    __slots__ = ("counts", "sum", "count")

    def __init__(self, family: "_Family") -> None:
        super().__init__(family)
        # one slot per finite bucket plus the +Inf overflow slot
        self.counts = [0] * (len(family.buckets) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        if not self._live:
            return
        index = bisect.bisect_left(self._family.buckets, value)
        with self._family.registry._lock:
            self.counts[index] += 1
            self.sum += value
            self.count += 1


_CHILD_TYPES = {
    "counter": _CounterChild,
    "gauge": _GaugeChild,
    "histogram": _HistogramChild,
}


class _Family:
    """A named metric family; children are keyed by label values."""

    def __init__(self, registry: "MetricsRegistry", name: str, help: str,
                 mtype: str, labelnames: Tuple[str, ...],
                 buckets: Tuple[float, ...] = DEFAULT_BUCKETS) -> None:
        self.registry = registry
        self.name = name
        self.help = help
        self.mtype = mtype
        self.labelnames = labelnames
        self.buckets = tuple(sorted(buckets))
        self._children: Dict[Tuple[str, ...], _Child] = {}

    def labels(self, *values: object, **kwargs: object) -> _Child:
        if kwargs:
            if values:
                raise ValueError("pass label values positionally or by "
                                 "name, not both")
            values = tuple(kwargs[name] for name in self.labelnames)
        key = tuple(str(v) for v in values)
        if len(key) != len(self.labelnames):
            raise ValueError(
                f"{self.name}: expected labels {self.labelnames}, "
                f"got {key}")
        child = self._children.get(key)
        if child is None:
            with self.registry._lock:
                child = self._children.setdefault(
                    key, _CHILD_TYPES[self.mtype](self))
        return child

    # convenience for label-less families ------------------------------ #
    def _solo(self) -> _Child:
        return self.labels()

    def inc(self, by: float = 1.0) -> None:
        self._solo().inc(by)           # type: ignore[attr-defined]

    def set(self, value: float) -> None:
        self._solo().set(value)        # type: ignore[attr-defined]

    def set_function(self, fn: Callable[[], float]) -> None:
        self._solo().set_function(fn)  # type: ignore[attr-defined]

    def observe(self, value: float) -> None:
        self._solo().observe(value)    # type: ignore[attr-defined]


class MetricsRegistry:
    """Instrument + collector registry with Prometheus text rendering."""

    def __init__(self, *, enabled: bool = True,
                 namespace: str = "clickinc") -> None:
        self.enabled = enabled
        self.namespace = namespace
        self._lock = threading.RLock()
        self._families: Dict[str, _Family] = {}
        # key -> weak callable returning an iterable of Sample
        self._collectors: Dict[object, Callable[[], object]] = {}

    # ------------------------------------------------------------------ #
    # instruments
    # ------------------------------------------------------------------ #
    def _family(self, name: str, help: str, mtype: str,
                labelnames: Sequence[str],
                buckets: Tuple[float, ...] = DEFAULT_BUCKETS) -> _Family:
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = _Family(self, name, help, mtype,
                                 tuple(labelnames), buckets)
                self._families[name] = family
            elif family.mtype != mtype or family.labelnames != tuple(labelnames):
                raise ValueError(
                    f"metric {name!r} already registered as "
                    f"{family.mtype}{family.labelnames}")
            return family

    def counter(self, name: str, help: str = "",
                labelnames: Sequence[str] = ()) -> _Family:
        return self._family(name, help, "counter", labelnames)

    def gauge(self, name: str, help: str = "",
              labelnames: Sequence[str] = ()) -> _Family:
        return self._family(name, help, "gauge", labelnames)

    def histogram(self, name: str, help: str = "",
                  labelnames: Sequence[str] = (),
                  buckets: Tuple[float, ...] = DEFAULT_BUCKETS) -> _Family:
        return self._family(name, help, "histogram", labelnames, buckets)

    # ------------------------------------------------------------------ #
    # collectors
    # ------------------------------------------------------------------ #
    def register_collector(self, fn: Callable[[], Iterable[Sample]],
                           key: Optional[object] = None) -> None:
        """Register *fn* to be sampled at render time.

        Bound methods are held through :class:`weakref.WeakMethod` so a
        collector never keeps its owner alive; dead collectors are pruned
        on the next render.  Re-registering the same *key* replaces the
        previous collector (idempotent registration).
        """
        if key is None:
            key = fn
        try:
            ref: Callable[[], object] = weakref.WeakMethod(fn)  # type: ignore[arg-type]
        except TypeError:
            ref = (lambda fn=fn: fn)
        with self._lock:
            self._collectors[key] = ref

    def register_counters(self, prefix: str, bag: object,
                          labels: Optional[Dict[str, str]] = None,
                          help: str = "") -> None:
        """Expose a live :class:`CounterMixin` bag under ``prefix``.

        Every integer counter field becomes a ``<prefix>_<field>_total``
        counter sample carrying *labels*.  The bag is read at render time
        through a weak reference — the registry never mirrors (and can
        therefore never disagree with) the bag the summaries are built
        from.  Registering the same ``(prefix, labels, bag)`` again is a
        no-op, so shared bags (e.g. a coordinator's stats aliased by the
        service) are only exposed once.
        """
        labels = dict(labels or {})
        bag_ref = weakref.ref(bag)

        def collect() -> List[Sample]:
            live = bag_ref()
            if live is None:
                return []
            counters = getattr(live, "counters", None)
            values = counters() if callable(counters) else {}
            return [Sample(f"{prefix}_{field}_total", labels, value,
                           "counter", help)
                    for field, value in values.items()]

        key = (prefix, tuple(sorted(labels.items())), id(bag))
        with self._lock:
            self._collectors[key] = (lambda c=collect: c)

    def unregister(self, key: object) -> None:
        with self._lock:
            self._collectors.pop(key, None)

    # ------------------------------------------------------------------ #
    # rendering
    # ------------------------------------------------------------------ #
    def _collect_samples(self) -> List[Sample]:
        samples: List[Sample] = []
        with self._lock:
            items = list(self._collectors.items())
        dead = []
        for key, ref in items:
            fn = ref()
            if fn is None:
                dead.append(key)
                continue
            try:
                samples.extend(fn())
            except Exception:
                continue
        if dead:
            with self._lock:
                for key in dead:
                    self._collectors.pop(key, None)
        return samples

    def render(self) -> str:
        """The registry in Prometheus text exposition format 0.0.4."""
        if not self.enabled:
            return ""
        lines: List[str] = []
        with self._lock:
            families = list(self._families.values())
        for family in families:
            children = list(family._children.items())
            if not children:
                continue
            lines.append(f"# HELP {family.name} "
                         f"{_escape_help(family.help or family.name)}")
            lines.append(f"# TYPE {family.name} {family.mtype}")
            for key, child in children:
                labels = dict(zip(family.labelnames, key))
                if family.mtype == "histogram":
                    assert isinstance(child, _HistogramChild)
                    cumulative = 0
                    for bound, count in zip(family.buckets, child.counts):
                        cumulative += count
                        text = _labels_text(dict(labels, le=_format_value(bound)))
                        lines.append(f"{family.name}_bucket{text} {cumulative}")
                    cumulative += child.counts[-1]
                    text = _labels_text(dict(labels, le="+Inf"))
                    lines.append(f"{family.name}_bucket{text} {cumulative}")
                    text = _labels_text(labels)
                    lines.append(f"{family.name}_sum{text} "
                                 f"{_format_value(child.sum)}")
                    lines.append(f"{family.name}_count{text} {child.count}")
                else:
                    value = (child.current()
                             if isinstance(child, _GaugeChild)
                             else child.value)  # type: ignore[union-attr]
                    lines.append(f"{family.name}{_labels_text(labels)} "
                                 f"{_format_value(value)}")
        # collector samples, grouped by family, duplicates summed
        grouped: Dict[str, Dict[Tuple[Tuple[str, str], ...], float]] = {}
        meta: Dict[str, Tuple[str, str]] = {}
        for sample in self._collect_samples():
            key = tuple(sorted(sample.labels.items()))
            grouped.setdefault(sample.name, {})
            grouped[sample.name][key] = grouped[sample.name].get(key, 0) \
                + sample.value
            meta.setdefault(sample.name, (sample.mtype, sample.help))
        for name in sorted(grouped):
            mtype, help = meta[name]
            lines.append(f"# HELP {name} {_escape_help(help or name)}")
            lines.append(f"# TYPE {name} {mtype}")
            for key, value in sorted(grouped[name].items()):
                lines.append(f"{name}{_labels_text(dict(key))} "
                             f"{_format_value(value)}")
        return "\n".join(lines) + "\n"

    def snapshot(self) -> Dict[str, object]:
        """A JSON-friendly dump (used by ``python -m repro.obs``)."""
        out: Dict[str, object] = {}
        if not self.enabled:
            return out
        with self._lock:
            families = list(self._families.values())
        for family in families:
            series: Dict[str, object] = {}
            for key, child in list(family._children.items()):
                label_text = _labels_text(dict(zip(family.labelnames, key))) \
                    or "{}"
                if isinstance(child, _HistogramChild):
                    series[label_text] = {
                        "count": child.count,
                        "sum": round(child.sum, 6),
                        "buckets": dict(zip(
                            [str(b) for b in family.buckets] + ["+Inf"],
                            child.counts)),
                    }
                elif isinstance(child, _GaugeChild):
                    series[label_text] = child.current()
                else:
                    series[label_text] = child.value
            if series:
                out[family.name] = series
        for sample in self._collect_samples():
            family = out.setdefault(sample.name, {})
            label_text = _labels_text(sample.labels) or "{}"
            family[label_text] = family.get(label_text, 0) + sample.value  # type: ignore[union-attr]
        return out


_DEFAULT = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide default registry."""
    return _DEFAULT
