"""A structured JSONL event log for operational events.

Counters say *how many*, histograms say *how long*, the event log says
*what happened*: migrations, device failures/drains, load-sheds,
backpressure and deadline aborts land here as one JSON object per event
with a wall-clock timestamp.  Events are kept in a bounded in-memory
ring (served by ``python -m repro.obs`` and the gateway's admin status)
and, when a path is configured, appended to a JSONL file an operator can
tail.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from typing import Deque, Dict, List, Optional

__all__ = ["EventLog", "get_event_log"]


class EventLog:
    def __init__(self, *, enabled: bool = True, capacity: int = 1024,
                 path: Optional[str] = None) -> None:
        self.enabled = enabled
        self._lock = threading.Lock()
        self._ring: Deque[Dict[str, object]] = deque(maxlen=capacity)
        self._counts: Dict[str, int] = {}
        self._path = path
        self._file = None

    # ------------------------------------------------------------------ #
    def set_path(self, path: Optional[str]) -> None:
        """(Re)direct the JSONL stream; ``None`` keeps events in memory."""
        with self._lock:
            if self._file is not None:
                try:
                    self._file.close()
                except Exception:
                    pass
                self._file = None
            self._path = path

    def emit(self, event: str, **fields: object) -> Optional[Dict[str, object]]:
        if not self.enabled:
            return None
        record: Dict[str, object] = {"ts": round(time.time(), 6),
                                     "event": event}
        record.update(fields)
        with self._lock:
            self._ring.append(record)
            self._counts[event] = self._counts.get(event, 0) + 1
            if self._path is not None:
                try:
                    if self._file is None:
                        self._file = open(self._path, "a", encoding="utf-8")
                    self._file.write(json.dumps(record, sort_keys=True,
                                                default=str) + "\n")
                    self._file.flush()
                except Exception:
                    # telemetry must never take the control plane down
                    self._file = None
                    self._path = None
        return record

    # ------------------------------------------------------------------ #
    def recent(self, limit: Optional[int] = None) -> List[Dict[str, object]]:
        with self._lock:
            events = list(self._ring)
        return events if limit is None else events[-limit:]

    def counts(self) -> Dict[str, int]:
        """Lifetime per-kind totals (survive ring eviction)."""
        with self._lock:
            return dict(self._counts)

    def to_jsonl(self, limit: Optional[int] = None) -> str:
        return "\n".join(json.dumps(event, sort_keys=True, default=str)
                         for event in self.recent(limit))

    def close(self) -> None:
        self.set_path(None)


_DEFAULT = EventLog()


def get_event_log() -> EventLog:
    """The process-wide default event log."""
    return _DEFAULT
