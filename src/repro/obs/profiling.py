"""Placement profiling primitives, folded into the metrics registry.

Moved here from :mod:`repro.core.profiling` (which remains as a
back-compat shim re-exporting these names, and still owns the
``python -m repro.core.profiling`` demo CI prints).  The classes are
unchanged; what is new is registry exposure: every live
:class:`PlacementProfile` — the :class:`~repro.placement.dp.DPPlacer`
creates one per placer — is tracked in a weak set, and
:func:`collect_placement_samples` sums counters and stage timers across
them at render time.  :class:`~repro.obs.Observability` installs that
collector into its registry, so ``GET /v1/metrics`` reports
``clickinc_placement_*`` series without the placer knowing any metrics
code exists.
"""

from __future__ import annotations

import time
import weakref
from contextlib import contextmanager
from dataclasses import dataclass, fields
from typing import Dict, Iterator, List

from repro.core.stats import CounterMixin
from repro.obs.metrics import MetricsRegistry, Sample

__all__ = [
    "PlacementCounters",
    "StageTimers",
    "PlacementProfile",
    "collect_placement_samples",
    "install_placement_collector",
]


@dataclass
class PlacementCounters(CounterMixin):
    """Running counters of the DP placer's optimised search path."""

    #: intervals evaluated (memo hits + misses)
    interval_evals: int = 0
    #: interval evaluations answered from the cross-epoch memo
    interval_memo_hits: int = 0
    #: per-device feasibility checks requested (memo hits + allocator runs)
    device_checks: int = 0
    #: feasibility checks answered from the memo without running Algorithm 2
    device_memo_hits: int = 0
    #: client/server sub-tree DP tables solved from scratch
    subtree_solves: int = 0
    #: sub-tree tables reused from the memo via signature correspondence
    subtree_memo_hits: int = 0
    #: batched objective rows computed by the vectorised scorer
    score_rows: int = 0
    #: individual interval gains served from those rows
    scored_intervals: int = 0
    #: candidate combinations enumerated by the deduplicated product
    product_combos: int = 0
    #: symmetric child groups whose permutations were collapsed
    product_symmetric_groups: int = 0
    #: memo entries dropped by commit/release/remove pruning
    memo_pruned_entries: int = 0


class StageTimers:
    """Named wall-clock accumulators: seconds and call counts per stage."""

    def __init__(self) -> None:
        self._seconds: Dict[str, float] = {}
        self._calls: Dict[str, int] = {}

    @contextmanager
    def stage(self, name: str) -> Iterator[None]:
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self._seconds[name] = self._seconds.get(name, 0.0) + elapsed
            self._calls[name] = self._calls.get(name, 0) + 1

    def seconds(self, name: str) -> float:
        return self._seconds.get(name, 0.0)

    def calls(self, name: str) -> int:
        return self._calls.get(name, 0)

    def summary(self) -> Dict[str, Dict[str, float]]:
        return {
            name: {"seconds": round(self._seconds[name], 6),
                   "calls": self._calls[name]}
            for name in sorted(self._seconds)
        }

    def reset(self) -> None:
        self._seconds.clear()
        self._calls.clear()


#: every live PlacementProfile, for fabric-wide metric aggregation
_LIVE_PROFILES: "weakref.WeakSet[PlacementProfile]" = weakref.WeakSet()


class PlacementProfile:
    """Counters + timers for one :class:`~repro.placement.dp.DPPlacer`."""

    def __init__(self) -> None:
        self.counters = PlacementCounters()
        self.timers = StageTimers()
        _LIVE_PROFILES.add(self)

    def reset(self) -> None:
        self.counters = PlacementCounters()
        self.timers.reset()

    def summary(self) -> Dict[str, object]:
        return {"counters": self.counters.summary(),
                "timers": self.timers.summary()}


def collect_placement_samples() -> List[Sample]:
    """Sum counters and stage timers across every live placer profile."""
    counter_totals: Dict[str, int] = {}
    stage_seconds: Dict[str, float] = {}
    stage_calls: Dict[str, int] = {}
    for profile in list(_LIVE_PROFILES):
        for name in (f.name for f in fields(profile.counters)):
            counter_totals[name] = counter_totals.get(name, 0) \
                + getattr(profile.counters, name)
        for stage, cell in profile.timers.summary().items():
            stage_seconds[stage] = stage_seconds.get(stage, 0.0) \
                + float(cell["seconds"])
            stage_calls[stage] = stage_calls.get(stage, 0) \
                + int(cell["calls"])
    samples = [
        Sample(f"clickinc_placement_{name}_total", {}, value, "counter",
               "DP placer search counters summed across live placers")
        for name, value in counter_totals.items()
    ]
    for stage in stage_seconds:
        samples.append(Sample(
            "clickinc_placement_stage_seconds_total", {"stage": stage},
            stage_seconds[stage], "counter",
            "Cumulative wall-clock seconds per placement stage"))
        samples.append(Sample(
            "clickinc_placement_stage_calls_total", {"stage": stage},
            stage_calls[stage], "counter",
            "Cumulative invocations per placement stage"))
    return samples


def install_placement_collector(registry: MetricsRegistry) -> None:
    """Expose the live placer profiles on *registry* (idempotent)."""
    registry.register_collector(collect_placement_samples,
                                key="placement-profiles")
