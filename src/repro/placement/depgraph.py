"""Instruction dependency graph (paper §5.2, step 1).

Two kinds of dependencies are modelled:

* **Data dependencies** — instruction *j* reads a variable written by an
  earlier instruction *i* (read-after-write).  After the frontend's SSA pass
  these are the only data hazards left.
* **State-sharing dependencies** — all instructions that read or write the
  same persistent (inter-packet) state are mutually dependent, because the
  state cannot be replicated across devices without breaking consistency
  (paper Lemma B.2).  These mutual dependencies form the cycles that the
  block-construction step collapses into single blocks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import networkx as nx

from repro.ir.instructions import Instruction
from repro.ir.program import IRProgram


@dataclass
class DependencyGraph:
    """Directed dependency graph over instruction uids.

    ``graph`` contains a node per instruction uid; edges point from the
    producing instruction to the consuming one.  ``state_groups`` lists, for
    every persistent state, the uids that touch it (used for the mutual
    state-sharing dependencies), and ``live_out`` maps each uid to the set of
    variable names its result feeds (used to compute cross-device parameter
    transfer).
    """

    program: IRProgram
    graph: nx.DiGraph
    state_groups: Dict[str, List[int]] = field(default_factory=dict)

    def predecessors(self, uid: int) -> List[int]:
        return list(self.graph.predecessors(uid))

    def successors(self, uid: int) -> List[int]:
        return list(self.graph.successors(uid))

    def instruction(self, uid: int) -> Instruction:
        return self.graph.nodes[uid]["instruction"]

    def depends_on(self, later: int, earlier: int) -> bool:
        """True if *later* (transitively) depends on *earlier*."""
        return nx.has_path(self.graph, earlier, later)

    def mutually_dependent_groups(self) -> List[List[int]]:
        """Groups of uids that must stay together (shared persistent state)."""
        return [uids for uids in self.state_groups.values() if len(uids) > 1]

    def topological_order(self) -> List[int]:
        """A topological order of the acyclic part of the graph.

        State-sharing mutual dependencies create 2-cycles; they are condensed
        first so the order is well defined.
        """
        condensation = nx.condensation(self.graph)
        order: List[int] = []
        for scc_id in nx.topological_sort(condensation):
            members = sorted(condensation.nodes[scc_id]["members"])
            order.extend(members)
        return order


def build_dependency_graph(program: IRProgram,
                           include_state_cycles: bool = True) -> DependencyGraph:
    """Construct the dependency graph of *program*.

    Parameters
    ----------
    include_state_cycles:
        When True (default, matching the paper) instructions sharing a
        persistent state are made mutually dependent, producing cycles that
        block construction later collapses.  Benchmarks that measure the
        effect of block construction can disable this.
    """
    graph = nx.DiGraph()
    writers: Dict[str, int] = {}
    state_groups: Dict[str, List[int]] = {}

    for instr in program:
        graph.add_node(instr.uid, instruction=instr)

    for instr in program:
        # data dependencies: RAW on temporaries and guards
        for name in instr.reads():
            producer = writers.get(name)
            if producer is not None and producer != instr.uid:
                graph.add_edge(producer, instr.uid, kind="data", var=name)
        for name in instr.writes():
            writers[name] = instr.uid
        # collect state users
        if instr.state is not None:
            state_groups.setdefault(instr.state, []).append(instr.uid)

    # packet-flow ordering: drop/forward decisions depend on everything that
    # guards them, which the guard edges already capture; no extra edges.

    if include_state_cycles:
        for state, uids in state_groups.items():
            if len(uids) < 2:
                continue
            for i, a in enumerate(uids):
                for b in uids[i + 1:]:
                    graph.add_edge(a, b, kind="state", var=state)
                    graph.add_edge(b, a, kind="state", var=state)

    return DependencyGraph(program=program, graph=graph, state_groups=state_groups)


def live_variable_widths(program: IRProgram) -> Dict[Tuple[int, int], int]:
    """Bits of temporaries live across each instruction boundary.

    Returns a mapping ``(producer_uid, consumer_uid) -> width`` for every
    data dependency; the placement objective sums the widths of dependencies
    that cross a device boundary to obtain the extra parameter bytes carried
    in the INC header (the φ term of Eq. 1).
    """
    widths: Dict[Tuple[int, int], int] = {}
    producer_of: Dict[str, Instruction] = {}
    for instr in program:
        for name in instr.reads():
            producer = producer_of.get(name)
            if producer is not None:
                widths[(producer.uid, instr.uid)] = max(
                    widths.get((producer.uid, instr.uid), 0), producer.width
                )
        for name in instr.writes():
            producer_of[name] = instr
    return widths
