"""Placement plans: the output of the DP and baseline placers.

A plan maps every block of the program to an equivalence class (and thus to
every member device), records the per-device stage assignments, assigns step
numbers for the replication / skip protocol of paper §6, and can materialise
per-device IR program snippets for synthesis and emulation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.exceptions import PlacementError
from repro.ir.program import IRProgram
from repro.placement.blocks import BlockDAG
from repro.placement.intra import StageAssignment


@dataclass
class BlockAssignment:
    """One block placed on one equivalence class of devices."""

    block_id: int
    ec_id: str
    device_names: List[str]
    step: int
    stage_assignments: Dict[str, StageAssignment] = field(default_factory=dict)
    replicated: bool = False

    @property
    def instruction_count(self) -> int:
        if not self.stage_assignments:
            return 0
        return next(iter(self.stage_assignments.values())).instruction_count


@dataclass
class PlacementPlan:
    """A complete placement of one program on the network."""

    program_name: str
    block_dag: BlockDAG
    assignments: List[BlockAssignment] = field(default_factory=list)
    gain: float = float("-inf")
    algorithm: str = "dp"
    compile_time_s: float = 0.0
    served_traffic_fraction: float = 1.0
    transfer_bits: int = 0
    metadata: Dict[str, object] = field(default_factory=dict)
    #: Full-topology allocation fingerprint at placement time.  A speculative
    #: (commit-free) plan whose fingerprint still matches the live topology
    #: can be committed with no further checks.
    topology_fingerprint: Optional[str] = None
    #: Allocation fingerprints of every device the placement search consulted
    #: (not just the devices the plan uses).  If these all still match at
    #: commit time the plan is provably the one a sequential placement under
    #: the live topology would produce; any mismatch is a conflict.
    device_fingerprints: Dict[str, str] = field(default_factory=dict)
    #: Topology allocation epoch the plan was placed against.  An unchanged
    #: epoch at commit time short-circuits validation (nothing can have
    #: changed); a changed epoch falls back to the fingerprint comparison.
    epoch: Optional[int] = None
    #: Per-shard allocation epochs for cross-shard plans: ``shard id ->
    #: shard-view epoch`` at speculative-placement time.  A shard whose
    #: view epoch is unchanged at prepare time can vote to commit with one
    #: integer comparison; a changed epoch falls back to the fingerprint
    #: sweep restricted to that shard's devices.
    shard_epochs: Dict[str, int] = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def devices_used(self) -> List[str]:
        names: List[str] = []
        for assignment in self.assignments:
            for name in assignment.device_names:
                if name not in names:
                    names.append(name)
        return names

    def blocks_on_device(self, device_name: str) -> List[int]:
        return [
            a.block_id for a in self.assignments if device_name in a.device_names
        ]

    def assignment_for_block(self, block_id: int) -> BlockAssignment:
        for assignment in self.assignments:
            if assignment.block_id == block_id:
                return assignment
        raise PlacementError(f"block {block_id} is not assigned in this plan")

    def instructions_per_device(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for assignment in self.assignments:
            block = self.block_dag.block(assignment.block_id)
            for device in assignment.device_names:
                counts[device] = counts.get(device, 0) + block.size
        return counts

    def stages_per_device(self) -> Dict[str, int]:
        stages: Dict[str, Set[int]] = {}
        for assignment in self.assignments:
            for device, stage_assignment in assignment.stage_assignments.items():
                used = stages.setdefault(device, set())
                used.update(stage_assignment.stage_of_instruction.values())
        return {device: len(indices) for device, indices in stages.items()}

    def normalized_resource(self) -> float:
        """Total instruction slots consumed across devices / program size.

        A value of 1.0 means no replication; replicating blocks on an
        equivalence class of two devices doubles their contribution, matching
        how Table 3 reports resource consumption.
        """
        total_instr = self.block_dag.total_instructions()
        if total_instr == 0:
            return 0.0
        consumed = 0
        for assignment in self.assignments:
            block = self.block_dag.block(assignment.block_id)
            consumed += block.size * max(1, len(assignment.device_names))
        return consumed / total_instr

    def communication_overhead(self) -> float:
        """Extra parameter bits crossing devices, normalised by the total
        dependency bits of the program (the h_p term of Eq. 1)."""
        total_bits = sum(
            data.get("bits", 0)
            for _, _, data in self.block_dag.graph.edges(data=True)
        )
        if total_bits == 0:
            return 0.0
        crossing = 0
        ec_of_block = {a.block_id: a.ec_id for a in self.assignments}
        for src, dst, data in self.block_dag.graph.edges(data=True):
            if ec_of_block.get(src) != ec_of_block.get(dst):
                crossing += data.get("bits", 0)
        return crossing / total_bits

    def is_complete(self) -> bool:
        assigned = {a.block_id for a in self.assignments}
        return assigned == {b.block_id for b in self.block_dag.blocks}

    # ------------------------------------------------------------------ #
    # snippet materialisation
    # ------------------------------------------------------------------ #
    def device_snippets(self) -> Dict[str, IRProgram]:
        """Build one IR snippet program per device, in step order.

        Each snippet contains the instructions of the blocks assigned to the
        device plus the state declarations those instructions reference; the
        snippet name encodes the owning user program so synthesis can merge
        and later strip it.
        """
        program = self.block_dag.program
        snippets: Dict[str, IRProgram] = {}
        ordered = sorted(self.assignments, key=lambda a: a.step)
        for assignment in ordered:
            block = self.block_dag.block(assignment.block_id)
            instructions = block.instructions(program)
            for device in assignment.device_names:
                snippet = snippets.get(device)
                if snippet is None:
                    snippet = IRProgram(f"{self.program_name}@{device}")
                    for fld in program.header_fields.values():
                        snippet.declare_header_field(fld)
                    snippets[device] = snippet
                for state_name in block.states:
                    if state_name not in snippet.states:
                        snippet.declare_state(program.get_state(state_name))
                for instr in instructions:
                    clone = instr.copy()
                    clone.owner = self.program_name
                    clone.annotations = {self.program_name}
                    snippet.append(clone)
        return snippets

    def step_table(self) -> Dict[int, int]:
        """Mapping block id -> step number (for the INC header protocol)."""
        return {a.block_id: a.step for a in self.assignments}

    def summary(self) -> Dict[str, object]:
        return {
            "program": self.program_name,
            "algorithm": self.algorithm,
            "gain": round(self.gain, 4),
            "devices": self.devices_used(),
            "instructions_per_device": self.instructions_per_device(),
            "stages_per_device": self.stages_per_device(),
            "normalized_resource": round(self.normalized_resource(), 3),
            "communication_overhead": round(self.communication_overhead(), 3),
            "compile_time_s": round(self.compile_time_s, 4),
            "complete": self.is_complete(),
        }
