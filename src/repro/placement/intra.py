"""Intra-device instruction allocation (paper §5.4, Algorithm 2).

Given the instructions of one or more blocks and a target device, the
allocator maps instructions to pipeline stages (or the core pool of an RTC
device) such that

* every instruction lands on a device that supports its capability class,
* dependent instructions never share a stage and respect pipeline order
  (paper Eq. 5 / Eq. 52-53),
* per-stage resource capacities are respected (Eq. 6), including the memory
  of the persistent states the instructions touch, and
* the packing is compact (instructions are pushed to the earliest legal
  stage), which is the pruning preference the paper describes.

The result records the number of stages used and the per-stage resource
demands so the caller can commit or roll back the allocation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.devices.base import Architecture, Device
from repro.ir.instructions import Instruction
from repro.ir.program import IRProgram


@dataclass
class StageAssignment:
    """Result of allocating a set of instructions onto one device."""

    device_name: str
    stage_of_instruction: Dict[int, int]          # uid -> stage index
    stage_demands: Dict[int, Dict[str, float]]    # stage index -> resources
    stages_used: int
    instruction_count: int

    def demand_items(self) -> List[Tuple[int, Dict[str, float]]]:
        return sorted(self.stage_demands.items())


class IntraDeviceAllocator:
    """Allocates instructions to the stages of a single device."""

    def __init__(self, device: Device) -> None:
        self.device = device

    # ------------------------------------------------------------------ #
    def allocate(
        self,
        program: IRProgram,
        instructions: Sequence[Instruction],
        commit: bool = False,
        start_stage: int = 0,
    ) -> Optional[StageAssignment]:
        """Try to place *instructions* on the device.

        Returns ``None`` when the placement is infeasible (unsupported
        capability class or insufficient resources).  With ``commit=True``
        the chosen resources are actually allocated on the device; otherwise
        the device state is left untouched (the demands in the returned
        assignment let the caller commit later).
        """
        if not instructions:
            return StageAssignment(
                device_name=self.device.name,
                stage_of_instruction={},
                stage_demands={},
                stages_used=0,
                instruction_count=0,
            )
        for instr in instructions:
            if not self.device.supports_instruction(instr):
                return None

        if self.device.architecture is Architecture.RTC:
            assignment = self._allocate_rtc(program, instructions)
        else:
            assignment = self._allocate_pipeline(program, instructions, start_stage)
        if assignment is None:
            return None
        if commit:
            for stage, demand in assignment.stage_demands.items():
                self.device.allocate_stage(stage, demand)
        return assignment

    def release(self, assignment: StageAssignment) -> None:
        """Release a previously committed assignment."""
        for stage, demand in assignment.stage_demands.items():
            self.device.release_stage(stage, demand)

    # ------------------------------------------------------------------ #
    # pipeline devices
    # ------------------------------------------------------------------ #
    def _allocate_pipeline(
        self,
        program: IRProgram,
        instructions: Sequence[Instruction],
        start_stage: int,
    ) -> Optional[StageAssignment]:
        device = self.device
        uid_set = {instr.uid for instr in instructions}
        # local producer map to respect dependencies among the given set
        producers: Dict[str, int] = {}
        # predicate (1-bit) results are evaluated by the stage's gateway, so a
        # consumer may sit in the same stage as the comparison producing them
        # (this mirrors RMT's match/gateway + action co-location, paper Eq. 53)
        predicate_vars: Set[str] = set()
        stage_of: Dict[int, int] = {}
        trial: List[Dict[str, float]] = [
            {key: 0.0 for key in stage.capacities} for stage in device.stages
        ]
        state_placed: Set[str] = set()

        def fits(stage_index: int, demand: Dict[str, float]) -> bool:
            stage = device.stages[stage_index]
            for key, amount in demand.items():
                if amount <= 0:
                    continue
                if stage.available(key) - trial[stage_index].get(key, 0.0) < amount:
                    return False
            return True

        state_anchor: Dict[str, int] = {}
        for instr in sorted(instructions, key=lambda i: i.uid):
            demand = device.instruction_demand(instr)
            earliest = start_stage
            for name in instr.reads():
                producer_stage = producers.get(name)
                if producer_stage is not None:
                    same_stage_ok = name in predicate_vars
                    earliest = max(
                        earliest, producer_stage if same_stage_ok else producer_stage + 1
                    )
            placed = False
            for stage_index in range(earliest, device.num_stages):
                if fits(stage_index, demand):
                    stage_of[instr.uid] = stage_index
                    for key, amount in demand.items():
                        if amount > 0:
                            trial[stage_index][key] = trial[stage_index].get(key, 0.0) + amount
                    for name in instr.writes():
                        producers[name] = stage_index
                        if instr.width == 1:
                            predicate_vars.add(name)
                    placed = True
                    break
            if not placed:
                return None
            if instr.state is not None and instr.state not in state_anchor:
                state_anchor[instr.state] = stage_of[instr.uid]

        # Persistent state memory: a table/register larger than one stage's
        # memory is spread over subsequent stages (RMT table spreading,
        # paper Eq. 13), anchored at the first stage that references it.
        for state_name, anchor in state_anchor.items():
            state_demand = device.state_demand(program, [state_name])
            for key, amount in state_demand.items():
                remaining = amount
                for stage_index in range(anchor, device.num_stages):
                    if remaining <= 1e-12:
                        break
                    stage = device.stages[stage_index]
                    available = stage.available(key) - trial[stage_index].get(key, 0.0)
                    take = min(remaining, max(0.0, available))
                    if take > 0:
                        trial[stage_index][key] = trial[stage_index].get(key, 0.0) + take
                        remaining -= take
                if remaining > 1e-9:
                    return None

        stage_demands = {
            index: {k: v for k, v in demands.items() if v > 0}
            for index, demands in enumerate(trial)
            if any(v > 0 for v in demands.values())
        }
        stages_used = (
            max(stage_of.values()) - min(stage_of.values()) + 1 if stage_of else 0
        )
        return StageAssignment(
            device_name=device.name,
            stage_of_instruction=stage_of,
            stage_demands=stage_demands,
            stages_used=stages_used,
            instruction_count=len(instructions),
        )

    # ------------------------------------------------------------------ #
    # run-to-completion devices
    # ------------------------------------------------------------------ #
    def _allocate_rtc(
        self,
        program: IRProgram,
        instructions: Sequence[Instruction],
    ) -> Optional[StageAssignment]:
        """RTC devices only need aggregate resource checks (paper Eq. 7)."""
        device = self.device
        total: Dict[str, float] = {}
        states: Set[str] = set()
        for instr in instructions:
            for key, amount in device.instruction_demand(instr).items():
                total[key] = total.get(key, 0.0) + amount
            if instr.state is not None:
                states.add(instr.state)
        for key, amount in device.state_demand(program, states).items():
            total[key] = total.get(key, 0.0) + amount

        # greedily spread over islands (pseudo-stages), filling each in turn
        stage_demands: Dict[int, Dict[str, float]] = {}
        remaining = dict(total)
        for index, stage in enumerate(device.stages):
            if all(v <= 0 for v in remaining.values()):
                break
            take: Dict[str, float] = {}
            for key, amount in list(remaining.items()):
                if amount <= 0:
                    continue
                available = stage.available(key)
                taken = min(amount, available)
                if taken > 0:
                    take[key] = taken
                    remaining[key] = amount - taken
            if take:
                stage_demands[index] = take
        if any(v > 1e-9 for v in remaining.values()):
            return None
        stage_of = {instr.uid: min(stage_demands) if stage_demands else 0
                    for instr in instructions}
        return StageAssignment(
            device_name=device.name,
            stage_of_instruction=stage_of,
            stage_demands=stage_demands,
            stages_used=len(stage_demands),
            instruction_count=len(instructions),
        )
