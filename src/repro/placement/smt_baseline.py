"""Exhaustive (SMT-style) placement baseline.

The paper compares ClickINC's DP against Z3-based placement (as used by
Lyra).  Z3 is unavailable offline, so this module provides an exhaustive
branch-and-bound search over the same constraint set: it enumerates every
monotone assignment of placement units (blocks or raw instructions) to the
devices of a chain, checks the per-device feasibility with the same
intra-device allocator, and keeps the assignment with the best Eq. 1 gain
(or the first feasible one, when ``optimize=False``, matching the paper's
observation that a satisfiability-only search is ~2x faster but produces
worse partitions).

Its runtime grows exponentially with the number of devices and placement
units, which is exactly the scaling behaviour Fig. 14(c) demonstrates.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.devices.base import Device
from repro.exceptions import PlacementError
from repro.ir.program import IRProgram
from repro.placement.blocks import Block, BlockDAG, build_block_dag
from repro.placement.intra import IntraDeviceAllocator, StageAssignment
from repro.placement.objective import ObjectiveWeights, PlacementObjective
from repro.placement.plan import BlockAssignment, PlacementPlan
from repro.placement.scoring import IntervalScorer


@dataclass
class ExhaustiveResult:
    """Internal best-so-far record of the exhaustive search."""

    gain: float
    boundaries: Tuple[int, ...]
    assignments: Dict[int, StageAssignment]


class ExhaustivePlacer:
    """Place a program on a device chain by exhaustive search.

    Parameters
    ----------
    devices:
        The chain of devices the traffic traverses, in forwarding order.
    optimize:
        When True (default) the search scans the entire space and returns the
        assignment with the highest Eq. 1 gain; when False it stops at the
        first feasible assignment (satisfiability only).
    timeout_s:
        Wall-clock budget; the search raises :class:`PlacementError` if no
        feasible assignment was found within it, otherwise returns the best
        found so far.
    """

    def __init__(self, devices: Sequence[Device], optimize: bool = True,
                 timeout_s: float = 120.0) -> None:
        if not devices:
            raise PlacementError("exhaustive placer needs at least one device")
        self.devices = list(devices)
        self.optimize = optimize
        self.timeout_s = timeout_s

    # ------------------------------------------------------------------ #
    def place(self, program: IRProgram, use_blocks: bool = True,
              max_block_size: int = 16) -> PlacementPlan:
        start_time = time.perf_counter()
        block_dag = build_block_dag(
            program,
            max_block_size=max_block_size if use_blocks else 1,
            merge=use_blocks,
        )
        ordered = block_dag.topological_order()
        num_units = len(ordered)
        num_devices = len(self.devices)

        objective = PlacementObjective(
            total_resource_units=max(1, block_dag.total_instructions() * num_devices),
            total_transfer_bits=max(
                1,
                sum(d.get("bits", 0) for _, _, d in block_dag.graph.edges(data=True)),
            ),
            weights=ObjectiveWeights.fixed(),
            adaptive=False,
        )

        # The same vectorised scorer the DP search uses (gain_row is
        # bit-identical to per-interval PlacementObjective.gain calls), so
        # the Fig. 14(c) baseline comparison measures the solvers, not two
        # different scoring code paths.  Rows are cached per interval start:
        # the boundary enumeration revisits each (start, end) pair many
        # times across assignments.
        scorer = IntervalScorer(block_dag, ordered, objective)
        gain_rows: Dict[int, List[float]] = {}

        best: Optional[ExhaustiveResult] = None
        explored = 0
        timed_out = False
        # enumerate split boundaries 0 <= b1 <= b2 <= ... <= b_{m-1} <= n:
        # device k hosts units [b_k, b_{k+1}).
        for boundaries in itertools.combinations_with_replacement(
            range(num_units + 1), num_devices - 1
        ):
            if time.perf_counter() - start_time > self.timeout_s:
                timed_out = True
                break
            explored += 1
            full = (0,) + boundaries + (num_units,)
            result = self._evaluate(
                block_dag, ordered, full, objective, scorer, gain_rows
            )
            if result is None:
                continue
            if best is None or result.gain > best.gain:
                best = result
            if not self.optimize:
                break

        elapsed = time.perf_counter() - start_time
        if best is None:
            raise PlacementError(
                "exhaustive search found no feasible placement"
                + (" (timed out)" if timed_out else "")
            )
        plan = self._materialise(program, block_dag, ordered, best, elapsed)
        plan.metadata["explored_assignments"] = explored
        plan.metadata["timed_out"] = timed_out
        return plan

    # ------------------------------------------------------------------ #
    def _evaluate(self, block_dag: BlockDAG, ordered: List[Block],
                  boundaries: Tuple[int, ...],
                  objective: PlacementObjective,
                  scorer: IntervalScorer,
                  gain_rows: Dict[int, List[float]]
                  ) -> Optional[ExhaustiveResult]:
        total_gain = 0.0
        assignments: Dict[int, StageAssignment] = {}
        num_units = len(ordered)
        for device_index, device in enumerate(self.devices):
            start, end = boundaries[device_index], boundaries[device_index + 1]
            if end == start:
                continue
            blocks = ordered[start:end]
            # feasibility still needs the concrete instruction list (the
            # intra-device allocator packs stages); only scoring is shared
            # with the DP path's scorer
            instructions = [
                i for b in blocks for i in b.instructions(block_dag.program)
            ]
            assignment = IntraDeviceAllocator(device).allocate(
                block_dag.program, instructions
            )
            if assignment is None:
                return None
            assignments[device_index] = assignment
            row = gain_rows.get(start)
            if row is None:
                row = scorer.gain_row(
                    start,
                    served_fraction=1.0,
                    weights=objective.base_weights,
                    replicas=1,
                    end_lo=start,
                    end_hi=num_units + 1,
                )
                gain_rows[start] = row
            total_gain += row[end - start]
        return ExhaustiveResult(
            gain=total_gain, boundaries=boundaries, assignments=assignments
        )

    def _materialise(self, program: IRProgram, block_dag: BlockDAG,
                     ordered: List[Block], best: ExhaustiveResult,
                     elapsed: float) -> PlacementPlan:
        plan = PlacementPlan(
            program_name=program.name,
            block_dag=block_dag,
            gain=best.gain,
            algorithm="smt" if self.optimize else "smt-sat",
            compile_time_s=elapsed,
        )
        for device_index, device in enumerate(self.devices):
            start, end = best.boundaries[device_index], best.boundaries[device_index + 1]
            for position in range(start, end):
                block = ordered[position]
                stage_assignment = best.assignments.get(device_index)
                plan.assignments.append(
                    BlockAssignment(
                        block_id=block.block_id,
                        ec_id=device.name,
                        device_names=[device.name],
                        step=position,
                        stage_assignments={device.name: stage_assignment}
                        if stage_assignment
                        else {},
                    )
                )
        return plan
