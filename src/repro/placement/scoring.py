"""Vectorised interval scoring for the DP placer.

``DPPlacer._evaluate_interval`` is the search's hot path: for every
(node, interval) pair the seed implementation rebuilt the interval's
instruction list, re-walked every block-DAG edge to compute the cut bits
(O(E) per interval) and evaluated Eq. 1 one scalar at a time.  The scorer
precomputes, once per ``place()``:

* a prefix-sum of per-block instruction counts, so any interval's
  instruction count is two lookups;
* the full ``cut_bits[start][end]`` matrix via range updates (each DAG edge
  contributes to two rectangles of the matrix), so cut bits are one lookup;

and evaluates Eq. 1 **row at a time**: for a fixed node and interval start,
the gains of every candidate end come from one array expression (numpy when
available, a pure-python loop otherwise).  The arithmetic replicates the
scalar :meth:`PlacementObjective.gain
<repro.placement.objective.PlacementObjective.gain>` operation order exactly
— ``w_t*h_t - w_r*h_r - w_p*h_p`` with the same int→float conversions — so
vectorised gains are bit-identical to the seed's (IEEE-754 elementwise ops
do not depend on batching), which the differential tests rely on.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.placement.blocks import Block, BlockDAG
from repro.placement.objective import ObjectiveWeights, PlacementObjective

try:  # numpy is an optional accelerator; the fallback is pure python
    import numpy as _np
except ImportError:  # pragma: no cover - the CI image ships numpy
    _np = None

__all__ = ["IntervalScorer"]


class IntervalScorer:
    """Precomputed interval statistics + array-at-a-time Eq. 1 rows."""

    def __init__(self, block_dag: BlockDAG, ordered_blocks: List[Block],
                 objective: PlacementObjective,
                 use_numpy: Optional[bool] = None) -> None:
        self.objective = objective
        self.num_blocks = len(ordered_blocks)
        self.use_numpy = (_np is not None) if use_numpy is None else (
            bool(use_numpy) and _np is not None
        )
        program = block_dag.program
        sizes = [len(block.instructions(program)) for block in ordered_blocks]
        prefix = [0] * (self.num_blocks + 1)
        for index, size in enumerate(sizes):
            prefix[index + 1] = prefix[index] + size
        position = {
            block.block_id: index for index, block in enumerate(ordered_blocks)
        }
        # cut_bits[s][e] = parameter bits crossing the boundary of interval
        # [s, e): an edge u->v (positions pu < pv in topological order) is
        # cut exactly when one endpoint is inside, i.e. for the rectangles
        # (s <= pu, pu < e <= pv) and (pu < s <= pv, e > pv).
        n = self.num_blocks
        if self.use_numpy:
            cut = _np.zeros((n + 1, n + 1), dtype=_np.int64)
            prefix_arr = _np.asarray(prefix, dtype=_np.int64)
        else:
            cut = [[0] * (n + 1) for _ in range(n + 1)]
            prefix_arr = None
        for src, dst, data in block_dag.graph.edges(data=True):
            bits = data.get("bits", 0)
            if not bits:
                continue
            pu, pv = position[src], position[dst]
            if pu > pv:
                pu, pv = pv, pu
            if self.use_numpy:
                cut[: pu + 1, pu + 1: pv + 1] += bits
                cut[pu + 1: pv + 1, pv + 1:] += bits
            else:
                for s in range(0, pu + 1):
                    row = cut[s]
                    for e in range(pu + 1, pv + 1):
                        row[e] += bits
                for s in range(pu + 1, pv + 1):
                    row = cut[s]
                    for e in range(pv + 1, n + 1):
                        row[e] += bits
        self._cut = cut
        self._prefix = prefix
        self._prefix_arr = prefix_arr

    # ------------------------------------------------------------------ #
    # scalar lookups
    # ------------------------------------------------------------------ #
    def instruction_count(self, start: int, end: int) -> int:
        return self._prefix[end] - self._prefix[start]

    def cut_bits(self, start: int, end: int) -> int:
        return int(self._cut[start][end])

    # ------------------------------------------------------------------ #
    # batched scoring
    # ------------------------------------------------------------------ #
    def gain_row(self, start: int, served_fraction: float,
                 weights: ObjectiveWeights, replicas: int,
                 end_lo: int, end_hi: int) -> List[float]:
        """Eq. 1 gains of intervals ``[start, e)`` for ``e`` in [end_lo, end_hi).

        Bit-identical to calling :meth:`PlacementObjective.gain` once per
        end (the differential tests assert this).
        """
        if end_hi <= end_lo:
            return []
        objective = self.objective
        replicas_eff = max(1, replicas)
        if self.use_numpy:
            counts = self._prefix_arr[end_lo:end_hi] - self._prefix[start]
            bits = self._cut[start, end_lo:end_hi]
            gains = (
                weights.w_t * served_fraction
                - weights.w_r * ((counts * replicas_eff)
                                 / objective.total_resource_units)
                - weights.w_p * (bits / objective.total_transfer_bits)
            )
            return gains.tolist()
        row = self._cut[start]
        prefix_start = self._prefix[start]
        return [
            objective.gain(
                served_fraction=served_fraction,
                instruction_count=self._prefix[end] - prefix_start,
                transfer_bits=row[end],
                weights=weights,
                replicas=replicas,
            )
            for end in range(end_lo, end_hi)
        ]
