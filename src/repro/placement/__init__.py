"""Program placement (paper §5).

This package implements ClickINC's placement pipeline:

1. :mod:`repro.placement.depgraph` — instruction dependency graph, including
   the mutual dependencies between instructions sharing persistent state.
2. :mod:`repro.placement.blocks` — IR block DAG construction (Algorithm 3):
   state-sharing grouping, cycle collapse, Kahn partitioning and block
   merging under a size threshold.
3. :mod:`repro.placement.objective` — the gain function of Eq. 1 with fixed
   or adaptive weights.
4. :mod:`repro.placement.intra` — instruction-to-stage allocation within one
   device (Algorithm 2).
5. :mod:`repro.placement.dp` — the multi-path dynamic-programming allocator
   over the reduced topology tree (Algorithm 1).
6. :mod:`repro.placement.smt_baseline` — an exhaustive branch-and-bound
   baseline standing in for the Z3/SMT approach of prior work.
7. :mod:`repro.placement.plan` — the placement plan produced by either
   algorithm, including per-device program snippets and step numbers.
"""

from repro.placement.depgraph import DependencyGraph, build_dependency_graph
from repro.placement.blocks import Block, BlockDAG, build_block_dag
from repro.placement.objective import ObjectiveWeights, PlacementObjective
from repro.placement.intra import IntraDeviceAllocator, StageAssignment
from repro.placement.memo import PlacementMemo, SharedPlacementMemo
from repro.placement.plan import BlockAssignment, PlacementPlan
from repro.placement.scoring import IntervalScorer
from repro.placement.dp import DPPlacer, PlacementRequest
from repro.placement.smt_baseline import ExhaustivePlacer
from repro.placement.greedy import GreedySinglePathPlacer, ReplicateAllPlacer

__all__ = [
    "DependencyGraph",
    "build_dependency_graph",
    "Block",
    "BlockDAG",
    "build_block_dag",
    "ObjectiveWeights",
    "PlacementObjective",
    "IntraDeviceAllocator",
    "StageAssignment",
    "BlockAssignment",
    "PlacementMemo",
    "SharedPlacementMemo",
    "PlacementPlan",
    "IntervalScorer",
    "DPPlacer",
    "PlacementRequest",
    "ExhaustivePlacer",
    "GreedySinglePathPlacer",
    "ReplicateAllPlacer",
]
