"""The placement objective of paper Eq. 1 and its adaptive weights.

``G(x) = w_t * h_t(x) - w_r * h_r(x) - w_p * h_p(x)``

* ``h_t`` — fraction of the requested traffic served by INC,
* ``h_r`` — fraction of the candidate devices' resources consumed,
* ``h_p`` — fraction of extra parameter bits transferred between devices
  because the program was split.

``w_t`` is fixed at 1/2 (the paper prefers throughput); ``w_r`` and ``w_p``
are either fixed or adapted to the remaining resource ratio *r* as
``w_r = 1 - 2**(r-1)`` and ``w_p = 1/2 - w_r`` (paper §5.4 "Adaptive
Weight"): when the network is empty resource cost barely matters, and as it
fills up resource conservation dominates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from repro.devices.base import Device


@dataclass
class ObjectiveWeights:
    """The (w_t, w_r, w_p) triple of Eq. 1."""

    w_t: float = 0.5
    w_r: float = 0.25
    w_p: float = 0.25

    @classmethod
    def fixed(cls) -> "ObjectiveWeights":
        """The fixed-weight baseline used in the Table 5 comparison."""
        return cls(w_t=0.5, w_r=0.25, w_p=0.25)

    @classmethod
    def adaptive(cls, remaining_ratio: float) -> "ObjectiveWeights":
        """Adaptive weights from the remaining-resource ratio ``r`` in [0, 1]."""
        r = min(1.0, max(0.0, remaining_ratio))
        w_r = 1.0 - 2.0 ** (r - 1.0)
        w_p = 0.5 - w_r
        return cls(w_t=0.5, w_r=w_r, w_p=w_p)


class PlacementObjective:
    """Computes gain terms for candidate (device, instruction-set) choices.

    Parameters
    ----------
    total_resource_units:
        Normalisation constant for h_r — the total amount of "resource units"
        of the candidate devices.  One unit is one instruction slot worth of
        resources; using instruction counts keeps the term dimensionless.
    total_transfer_bits:
        Normalisation constant for h_p — the total parameter bits the program
        could possibly transfer (sum over all dependency edges).
    weights:
        Fixed weights; if ``adaptive`` is True they are recomputed from the
        devices' remaining capacity every time :meth:`current_weights` is
        called.
    """

    def __init__(
        self,
        total_resource_units: float,
        total_transfer_bits: float,
        weights: Optional[ObjectiveWeights] = None,
        adaptive: bool = True,
    ) -> None:
        self.total_resource_units = max(1.0, total_resource_units)
        self.total_transfer_bits = max(1.0, total_transfer_bits)
        self.base_weights = weights or ObjectiveWeights.fixed()
        self.adaptive = adaptive

    def current_weights(self, devices: Iterable[Device]) -> ObjectiveWeights:
        if not self.adaptive:
            return self.base_weights
        devices = list(devices)
        if not devices:
            return self.base_weights
        remaining = sum(d.remaining_ratio() for d in devices) / len(devices)
        return ObjectiveWeights.adaptive(remaining)

    # -- individual terms ---------------------------------------------------
    def resource_term(self, instruction_count: float, replicas: int = 1) -> float:
        """h_r contribution of placing *instruction_count* instructions,
        replicated on *replicas* devices of an equivalence class."""
        return (instruction_count * max(1, replicas)) / self.total_resource_units

    def transfer_term(self, transfer_bits: float) -> float:
        """h_p contribution of *transfer_bits* crossing a device boundary."""
        return transfer_bits / self.total_transfer_bits

    def traffic_term(self, served_fraction: float) -> float:
        return served_fraction

    def gain(self, served_fraction: float, instruction_count: float,
             transfer_bits: float, weights: ObjectiveWeights,
             replicas: int = 1) -> float:
        """Full Eq. 1 gain for one candidate assignment."""
        return (
            weights.w_t * self.traffic_term(served_fraction)
            - weights.w_r * self.resource_term(instruction_count, replicas)
            - weights.w_p * self.transfer_term(transfer_bits)
        )
