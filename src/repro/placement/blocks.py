"""IR block DAG construction (paper §5.2, Algorithm 3).

Blocks are the placement unit: every instruction in a block is placed on the
same device, so grouping instructions shrinks the placement search space.
Construction follows the three steps of the paper:

1. build the instruction dependency graph (including state-sharing cycles),
2. collapse every cycle — instructions that share persistent state must not
   be split across devices — into one block,
3. run Kahn's topological partitioning and merge non-exclusive blocks (same
   capability kind, within the size threshold) inside a partition and across
   adjacent partitions until no merge is possible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Sequence, Tuple

import networkx as nx

from repro.exceptions import PlacementError
from repro.ir.instructions import InstrClass, Instruction
from repro.ir.program import IRProgram
from repro.placement.depgraph import (
    DependencyGraph,
    build_dependency_graph,
    live_variable_widths,
)

#: Capability-class groups considered "the same type" for merging purposes.
#: Stateless compute merges together; stateful ops merge together; table
#: lookups merge with table lookups; packet-flow with packet-flow.
_MERGE_KIND: Dict[InstrClass, str] = {
    InstrClass.BIN: "compute",
    InstrClass.BIC: "compute",
    InstrClass.BCA: "float",
    InstrClass.BAF: "compute",
    InstrClass.BSO: "stateful",
    InstrClass.BSEM: "stateful",
    InstrClass.BSNEM: "stateful",
    InstrClass.BEM: "table",
    InstrClass.BNEM: "table",
    InstrClass.BDM: "table",
    InstrClass.BBPF: "flow",
    InstrClass.BAPF: "flow",
    InstrClass.BCF: "crypto",
    InstrClass.META: "compute",
}


@dataclass
class Block:
    """A placement unit: an ordered set of mutually co-located instructions."""

    block_id: int
    instruction_uids: List[int]
    classes: FrozenSet[InstrClass]
    states: FrozenSet[str]
    kind: str

    @property
    def size(self) -> int:
        return len(self.instruction_uids)

    def instructions(self, program: IRProgram) -> List[Instruction]:
        by_uid = {instr.uid: instr for instr in program}
        return [by_uid[uid] for uid in sorted(self.instruction_uids)]


@dataclass
class BlockDAG:
    """The DAG of blocks plus the per-edge parameter-transfer costs."""

    program: IRProgram
    blocks: List[Block]
    graph: nx.DiGraph
    dependency: DependencyGraph

    def __post_init__(self) -> None:
        self._by_id = {block.block_id: block for block in self.blocks}

    def block(self, block_id: int) -> Block:
        return self._by_id[block_id]

    def topological_order(self) -> List[Block]:
        """Blocks in a topological (and deterministic) execution order."""
        order = list(nx.lexicographical_topological_sort(self.graph))
        return [self._by_id[block_id] for block_id in order]

    def num_blocks(self) -> int:
        return len(self.blocks)

    def edges(self) -> List[Tuple[int, int]]:
        return list(self.graph.edges())

    def transfer_bits(self, src_block: int, dst_block: int) -> int:
        """Parameter bits that must travel from *src_block* to *dst_block*."""
        data = self.graph.get_edge_data(src_block, dst_block)
        return int(data.get("bits", 0)) if data else 0

    def cut_cost_after(self, prefix_blocks: Sequence[int]) -> int:
        """Bits crossing the boundary between *prefix_blocks* and the rest."""
        prefix = set(prefix_blocks)
        total = 0
        for src, dst, data in self.graph.edges(data=True):
            if src in prefix and dst not in prefix:
                total += int(data.get("bits", 0))
        return total

    def block_of_instruction(self, uid: int) -> Block:
        for block in self.blocks:
            if uid in block.instruction_uids:
                return block
        raise PlacementError(f"instruction uid {uid} belongs to no block")

    def total_instructions(self) -> int:
        return sum(block.size for block in self.blocks)


def build_block_dag(program: IRProgram, max_block_size: int = 16,
                    merge: bool = True) -> BlockDAG:
    """Build the block DAG of *program* (Algorithm 3).

    Parameters
    ----------
    max_block_size:
        Size threshold for merged blocks; cycles (state-sharing groups) may
        exceed it because they are inseparable.
    merge:
        When False, skip the Kahn merging steps and keep one block per
        collapsed cycle / instruction.  Used by the Fig. 14 ablation.
    """
    dependency = build_dependency_graph(program)
    graph = dependency.graph

    # ---- step 2: collapse cycles (strongly connected components) ----------
    condensation = nx.condensation(graph)
    block_members: Dict[int, List[int]] = {}
    for scc_id in condensation.nodes:
        block_members[scc_id] = sorted(condensation.nodes[scc_id]["members"])

    block_graph = nx.DiGraph()
    for scc_id, members in block_members.items():
        block_graph.add_node(scc_id, members=list(members))
    for src, dst in condensation.edges:
        block_graph.add_edge(src, dst)

    if merge:
        block_graph = _kahn_merge(program, block_graph, max_block_size)

    blocks, dag = _materialise(program, block_graph, dependency)
    return BlockDAG(program=program, blocks=blocks, graph=dag, dependency=dependency)


# --------------------------------------------------------------------------- #
# merging
# --------------------------------------------------------------------------- #
def _block_kind(program: IRProgram, members: Iterable[int]) -> str:
    by_uid = {instr.uid: instr for instr in program}
    kinds = {_MERGE_KIND[by_uid[uid].instr_class] for uid in members}
    if kinds <= {"compute"}:
        return "compute"
    if len(kinds) == 1:
        return next(iter(kinds))
    return "mixed"


def _kahn_partitions(graph: nx.DiGraph) -> List[List[int]]:
    """Kahn's algorithm partitions: repeatedly peel nodes with in-degree 0."""
    remaining = graph.copy()
    partitions: List[List[int]] = []
    while remaining.nodes:
        frontier = [n for n in remaining.nodes if remaining.in_degree(n) == 0]
        if not frontier:
            raise PlacementError("block graph contains a cycle after condensation")
        partitions.append(sorted(frontier))
        remaining.remove_nodes_from(frontier)
    return partitions


def _kahn_merge(program: IRProgram, block_graph: nx.DiGraph,
                max_block_size: int) -> nx.DiGraph:
    """Steps 3 of Algorithm 3: merge non-exclusive blocks within and across
    adjacent Kahn partitions until a fixed point."""
    changed = True
    while changed:
        changed = False
        partitions = _kahn_partitions(block_graph)
        index_of = {}
        for index, partition in enumerate(partitions):
            for node in partition:
                index_of[node] = index

        # merge within a partition: same kind, combined size within limit,
        # and merging must not create a cycle (it cannot, within a partition).
        for partition in partitions:
            by_kind: Dict[str, List[int]] = {}
            for node in partition:
                if node not in block_graph:
                    continue
                kind = _block_kind(program, block_graph.nodes[node]["members"])
                by_kind.setdefault(kind, []).append(node)
            for kind, nodes in by_kind.items():
                if kind == "mixed" or len(nodes) < 2:
                    continue
                merged = _merge_chain(program, block_graph, nodes, max_block_size)
                changed = changed or merged

        # merge across adjacent partitions: a node may absorb a successor in
        # the next partition when kinds match, size allows, and the successor
        # has no other predecessor outside the merged pair (keeps the DAG).
        partitions = _kahn_partitions(block_graph)
        index_of = {}
        for index, partition in enumerate(partitions):
            for node in partition:
                index_of[node] = index
        for node in list(block_graph.nodes):
            if node not in block_graph:
                continue
            node_kind = _block_kind(program, block_graph.nodes[node]["members"])
            if node_kind == "mixed":
                continue
            for succ in list(block_graph.successors(node)):
                if succ not in block_graph or index_of.get(succ, -1) != index_of.get(node, -2) + 1:
                    continue
                succ_kind = _block_kind(program, block_graph.nodes[succ]["members"])
                if succ_kind != node_kind:
                    continue
                combined = (
                    len(block_graph.nodes[node]["members"])
                    + len(block_graph.nodes[succ]["members"])
                )
                if combined > max_block_size:
                    continue
                other_preds = set(block_graph.predecessors(succ)) - {node}
                if any(index_of.get(p, -1) >= index_of[node] for p in other_preds):
                    continue
                _absorb(block_graph, node, succ)
                changed = True
    return block_graph


def _merge_chain(program: IRProgram, graph: nx.DiGraph, nodes: List[int],
                 max_block_size: int) -> bool:
    """Merge as many of *nodes* (same Kahn partition, same kind) as fit."""
    merged_any = False
    nodes = [n for n in nodes if n in graph]
    if len(nodes) < 2:
        return False
    base = nodes[0]
    for other in nodes[1:]:
        if other not in graph or base not in graph:
            continue
        combined = len(graph.nodes[base]["members"]) + len(graph.nodes[other]["members"])
        if combined > max_block_size:
            base = other
            continue
        _absorb(graph, base, other)
        merged_any = True
    return merged_any


def _absorb(graph: nx.DiGraph, keep: int, remove: int) -> None:
    """Merge node *remove* into node *keep*, rewiring edges."""
    graph.nodes[keep]["members"] = sorted(
        graph.nodes[keep]["members"] + graph.nodes[remove]["members"]
    )
    for pred in list(graph.predecessors(remove)):
        if pred != keep:
            graph.add_edge(pred, keep)
    for succ in list(graph.successors(remove)):
        if succ != keep:
            graph.add_edge(keep, succ)
    graph.remove_node(remove)


# --------------------------------------------------------------------------- #
# materialisation
# --------------------------------------------------------------------------- #
def _materialise(program: IRProgram, block_graph: nx.DiGraph,
                 dependency: DependencyGraph) -> Tuple[List[Block], nx.DiGraph]:
    by_uid = {instr.uid: instr for instr in program}
    transfer = live_variable_widths(program)

    # deterministic block ids in topological order of the block graph
    order = list(nx.lexicographical_topological_sort(block_graph))
    id_map = {node: index for index, node in enumerate(order)}

    blocks: List[Block] = []
    uid_to_block: Dict[int, int] = {}
    for node in order:
        members = block_graph.nodes[node]["members"]
        classes = frozenset(by_uid[uid].instr_class for uid in members)
        states = frozenset(
            by_uid[uid].state for uid in members if by_uid[uid].state is not None
        )
        blocks.append(
            Block(
                block_id=id_map[node],
                instruction_uids=sorted(members),
                classes=classes,
                states=states,
                kind=_block_kind(program, members),
            )
        )
        for uid in members:
            uid_to_block[uid] = id_map[node]

    dag = nx.DiGraph()
    for block in blocks:
        dag.add_node(block.block_id)
    for (src_uid, dst_uid), bits in transfer.items():
        src_block = uid_to_block[src_uid]
        dst_block = uid_to_block[dst_uid]
        if src_block == dst_block:
            continue
        existing = dag.get_edge_data(src_block, dst_block, default={"bits": 0})
        dag.add_edge(src_block, dst_block, bits=existing.get("bits", 0) + bits)
    for src, dst in block_graph.edges:
        a, b = id_map[src], id_map[dst]
        if a != b and not dag.has_edge(a, b):
            dag.add_edge(a, b, bits=0)
    return blocks, dag
