"""Naïve placement baselines (paper §5.1 "Naïve methods").

Two strawman strategies the paper contrasts with the DP algorithm:

* :class:`GreedySinglePathPlacer` — greedily fill devices along a *single*
  chosen path; traffic on other paths is not served (limits h_t).
* :class:`ReplicateAllPlacer` — replicate the whole program on the first
  device of every path; simple but wastes resources and overloads devices
  when the program does not fit on one device.
"""

from __future__ import annotations

import time
from typing import List, Sequence

from repro.devices.base import Device
from repro.exceptions import PlacementError
from repro.ir.program import IRProgram
from repro.placement.blocks import build_block_dag
from repro.placement.intra import IntraDeviceAllocator
from repro.placement.plan import BlockAssignment, PlacementPlan
from repro.topology.network import NetworkTopology


class GreedySinglePathPlacer:
    """Fill devices greedily along the first shortest path only."""

    def __init__(self, topology: NetworkTopology) -> None:
        self.topology = topology

    def place(self, program: IRProgram, source_group: str,
              destination_group: str, max_block_size: int = 16) -> PlacementPlan:
        start_time = time.perf_counter()
        paths = self.topology.paths_between_groups(source_group, destination_group)
        path = paths[0]
        block_dag = build_block_dag(program, max_block_size=max_block_size)
        ordered = block_dag.topological_order()
        plan = PlacementPlan(
            program_name=program.name, block_dag=block_dag, algorithm="greedy",
        )
        position = 0
        remaining = list(ordered)
        for device_name in path:
            if not remaining:
                break
            device = self.topology.device(device_name)
            allocator = IntraDeviceAllocator(device)
            placed_here = []
            # place as many consecutive blocks as fit on this device
            while remaining:
                candidate_blocks = placed_here + [remaining[0]]
                instructions = [
                    i
                    for b in candidate_blocks
                    for i in b.instructions(program)
                ]
                assignment = allocator.allocate(program, instructions)
                if assignment is None:
                    break
                placed_here = candidate_blocks
                remaining.pop(0)
            if placed_here:
                instructions = [
                    i for b in placed_here for i in b.instructions(program)
                ]
                assignment = allocator.allocate(program, instructions)
                for block in placed_here:
                    plan.assignments.append(
                        BlockAssignment(
                            block_id=block.block_id,
                            ec_id=device_name,
                            device_names=[device_name],
                            step=position,
                            stage_assignments={device_name: assignment},
                        )
                    )
                    position += 1
        plan.compile_time_s = time.perf_counter() - start_time
        plan.served_traffic_fraction = 1.0 / max(
            1, len(self.topology.paths_between_groups(source_group, destination_group))
        )
        # the greedy search consulted exactly the devices of the chosen path
        plan.device_fingerprints = self.topology.device_fingerprints(path)
        plan.topology_fingerprint = self.topology.allocation_fingerprint()
        plan.epoch = self.topology.allocation_epoch()
        if not plan.is_complete():
            raise PlacementError(
                f"greedy single-path placement could not fit {program.name!r} "
                f"along {path}"
            )
        plan.gain = plan.served_traffic_fraction - plan.normalized_resource() * 0.25
        return plan


class ReplicateAllPlacer:
    """Replicate the entire program on the ToR of every source path."""

    def __init__(self, topology: NetworkTopology) -> None:
        self.topology = topology

    def place(self, program: IRProgram, source_groups: Sequence[str],
              destination_group: str, max_block_size: int = 16) -> PlacementPlan:
        start_time = time.perf_counter()
        block_dag = build_block_dag(program, max_block_size=max_block_size)
        ordered = block_dag.topological_order()
        plan = PlacementPlan(
            program_name=program.name, block_dag=block_dag, algorithm="replicate",
        )
        instructions = [i for b in ordered for i in b.instructions(program)]
        devices: List[Device] = []
        for group in source_groups:
            tor_name = self.topology.host_group(group).tor
            device = self.topology.device(tor_name)
            if device not in devices:
                devices.append(device)
        stage_assignments = {}
        for device in devices:
            assignment = IntraDeviceAllocator(device).allocate(program, instructions)
            if assignment is None:
                raise PlacementError(
                    f"program {program.name!r} does not fit on {device.name} for "
                    "full replication"
                )
            stage_assignments[device.name] = assignment
        for position, block in enumerate(ordered):
            plan.assignments.append(
                BlockAssignment(
                    block_id=block.block_id,
                    ec_id="+".join(d.name for d in devices),
                    device_names=[d.name for d in devices],
                    step=position,
                    stage_assignments=stage_assignments,
                    replicated=len(devices) > 1,
                )
            )
        plan.compile_time_s = time.perf_counter() - start_time
        plan.gain = 1.0 - plan.normalized_resource() * 0.25
        plan.device_fingerprints = self.topology.device_fingerprints(
            [device.name for device in devices]
        )
        plan.topology_fingerprint = self.topology.allocation_fingerprint()
        plan.epoch = self.topology.allocation_epoch()
        return plan
