"""Multi-path dynamic-programming placement (paper §5.4, Algorithm 1).

The placer works on the reduced topology tree of §5.3: the client-side
sub-tree is traversed from the source leaves up to the root, the server-side
sub-tree from the root down to the destination leaf, and the two partial
solutions are joined at the root (Eq. 2).

Because the block DAG is topologically ordered, a placement assigns each
equivalence class a *contiguous interval* of the block sequence: a path from
a source leaf to the destination executes the program front to back as the
packet travels.  The DP state is therefore "how many blocks have been placed
so far along every path through this node", and the recurrence tries every
interval the current node could host, pruning intervals whose capability or
resource requirements the node cannot satisfy (paper's constraint pruning).

Fabric-scale search adds three coordinated optimisations,
all enabled by default and all provably plan-identical to the reference
search (``DPPlacer(topology, optimize=False)``, asserted by the differential
tests in ``tests/test_placement_scale.py``):

* **incremental DP** — feasibility checks, interval gains and whole
  sub-tree DP tables are memoised across ``place()`` calls in a
  :class:`~repro.placement.memo.PlacementMemo`.  Keys are content-addressed
  (program fingerprint + device allocation fingerprints), so after a single
  device's allocation changes only the sub-solutions that consulted that
  device miss; everything else replays from the memo.
* **equivalence-class pruning** — symmetric sub-trees (e.g. the identical
  pods of a fat-tree) share one DP solve: a recursive name-blind
  :func:`~repro.topology.equivalence.subtree_signature` routes isomorphic
  sub-trees to the same stored table, replayed through an ec-id
  correspondence, so search cost grows with topology *shape* rather than
  device count.
* **vectorised scoring** — per-interval Eq. 1 gains come from
  :class:`~repro.placement.scoring.IntervalScorer` rows (precomputed cut-bit
  matrix + prefix sums, numpy when available) instead of per-interval O(E)
  edge walks.

Profiling hooks (:class:`~repro.core.profiling.PlacementProfile` on
``DPPlacer.profile``) attribute wall-clock to search / scoring / validation
stages and count memo hits, for the scaling benchmarks and CI summaries.
"""

from __future__ import annotations

import hashlib
import itertools
import time
from dataclasses import dataclass, field
from typing import Collection, Dict, List, Optional, Sequence, Tuple

from repro.exceptions import (
    PlacementConflictError,
    PlacementError,
    StaleMemoError,
)
from repro.ir.program import IRProgram
from repro.placement.blocks import Block, BlockDAG, build_block_dag
from repro.placement.intra import IntraDeviceAllocator, StageAssignment
from repro.placement.memo import INFEASIBLE, MISS, PlacementMemo
from repro.placement.objective import ObjectiveWeights, PlacementObjective
from repro.placement.plan import BlockAssignment, PlacementPlan
from repro.placement.scoring import IntervalScorer
from repro.topology.equivalence import (
    ReducedNode,
    ReducedTree,
    build_reduced_tree,
    node_content_key,
    subtree_class_ids,
    subtree_correspondence,
    subtree_signature,
)
from repro.topology.network import NetworkTopology

NEG_INF = float("-inf")


@dataclass
class PlacementRequest:
    """Everything the placer needs to place one program.

    Attributes
    ----------
    program:
        The compiled IR program.
    source_groups:
        Host groups whose traffic the program must process (clients/workers).
    destination_group:
        Host group the traffic is destined to (servers / parameter server).
    traffic_rates:
        Optional per-source traffic rates (packets per second) used to weigh
        paths; defaults to uniform.
    max_block_size:
        Block-construction size threshold.
    use_blocks:
        Disable to place individual instructions (Fig. 14 ablation).
    adaptive_weights:
        Use the adaptive weight schedule of §5.4 (Table 5 ablation).
    """

    program: IRProgram
    source_groups: Sequence[str]
    destination_group: str
    traffic_rates: Optional[Dict[str, float]] = None
    max_block_size: int = 16
    use_blocks: bool = True
    adaptive_weights: bool = True
    prune: bool = True


@dataclass
class _Candidate:
    """A partial DP solution at one node: gain + chosen intervals below it."""

    gain: float
    assignments: List[Tuple[str, int, int]] = field(default_factory=list)
    # list of (ec_id, start_block_index, end_block_index) intervals


class _SearchContext:
    """Per-``place()`` state of the optimised search path.

    Bundles the memo handle, the vectorised scorer, the profiling counters
    and the per-call caches (node content digests, sub-tree signatures,
    hoisted per-node objective weights, interval instruction lists and gain
    rows).  ``ctx is None`` throughout the DP methods selects the reference
    path, which recomputes everything from scratch exactly like the seed
    implementation.
    """

    def __init__(self, placer: "DPPlacer", block_dag: BlockDAG,
                 ordered_blocks: List[Block], objective: PlacementObjective,
                 request: PlacementRequest) -> None:
        from repro.core.cache import fingerprint_ir  # local: avoids an
        # import cycle (repro.core.__init__ imports the controller, which
        # imports this module)

        self.topology = placer.topology
        self.memo = placer.memo
        self.counters = placer.profile.counters
        self.block_dag = block_dag
        self.ordered_blocks = ordered_blocks
        self.num_blocks = len(ordered_blocks)
        self.objective = objective
        self.request = request
        self.scorer = IntervalScorer(block_dag, ordered_blocks, objective)
        # The context digest pins everything a sub-solution's value depends
        # on besides the devices it consulted: the (name-normalised) program
        # and block parameters determine the intervals' content, and the
        # objective's normalisation constants / weight mode determine how an
        # interval's gain is computed from that content.
        context = (
            fingerprint_ir(request.program, normalize_name=True),
            request.max_block_size if request.use_blocks else 1,
            bool(request.use_blocks),
            bool(request.adaptive_weights),
            bool(request.prune),
            repr(objective.total_resource_units),
            repr(objective.total_transfer_bits),
            repr(objective.base_weights),
        )
        self.context_digest = hashlib.sha256(
            repr(context).encode("utf-8")
        ).hexdigest()[:32]
        self._signatures: Dict[int, str] = {}
        self._node_digests: Dict[int, str] = {}
        self._node_weights: Dict[int, ObjectiveWeights] = {}
        self._node_devices: Dict[int, Tuple[list, list]] = {}
        self._rows: Dict[Tuple[int, int], List[float]] = {}
        self._instructions: Dict[Tuple[int, int], list] = {}
        # per-place overlay over the cross-epoch memo: the root join loop
        # re-evaluates the same (node, interval) for thousands of child
        # combinations, and a plain dict probe is much cheaper than the
        # LRU-maintaining memo lookup
        self._local_evals: Dict[Tuple[int, int, int], Optional[float]] = {}

    # -- per-node caches ---------------------------------------------------
    def node_devices(self, node: ReducedNode) -> Tuple[list, list]:
        cached = self._node_devices.get(id(node))
        if cached is None:
            cached = (
                [self.topology.device(name) for name in node.ec.members],
                [self.topology.device(name) for name in node.bypass],
            )
            self._node_devices[id(node)] = cached
        return cached

    def node_weights(self, node: ReducedNode) -> ObjectiveWeights:
        # device allocations are frozen during the commit-free search, so
        # the adaptive weights are a per-node constant and can be hoisted
        weights = self._node_weights.get(id(node))
        if weights is None:
            devices, _ = self.node_devices(node)
            weights = self.objective.current_weights(devices)
            self._node_weights[id(node)] = weights
        return weights

    def node_digest(self, node: ReducedNode) -> str:
        digest = self._node_digests.get(id(node))
        if digest is None:
            digest = hashlib.sha256(
                repr(node_content_key(node, self.topology)).encode("utf-8")
            ).hexdigest()[:32]
            self._node_digests[id(node)] = digest
        return digest

    def subtree_digest(self, node: ReducedNode) -> str:
        return subtree_signature(node, self.topology, self._signatures)

    def subtree_device_names(self, node: ReducedNode) -> List[str]:
        names: List[str] = []
        seen = set()
        for sub in node.iter_nodes():
            for name in itertools.chain(sub.ec.members, sub.bypass):
                if name not in seen:
                    seen.add(name)
                    names.append(name)
        return names

    def table_stamps(self, node: ReducedNode) -> Tuple[Tuple[str, str], ...]:
        """Allocation fingerprints of every device a sub-tree table consults.

        Stored alongside the table and re-checked by
        :meth:`verify_table_stamps` before a memo hit is trusted — the
        runtime guard behind the memo's content-addressing invariant.
        """
        return tuple(
            (name, self.topology.device(name).allocation_fingerprint())
            for name in self.subtree_device_names(node)
        )

    def verify_table_stamps(self, stamps: Sequence[Tuple[str, str]],
                            node: ReducedNode) -> None:
        """Raise :class:`StaleMemoError` if a stamped device drifted.

        The memo's table keys embed every consulted device's allocation
        fingerprint (via the recursive sub-tree signature), so for a hit on
        *node*'s own devices signature equality implies fingerprint
        equality — a stamp that disagrees with the live device means that
        invariant was violated somewhere (a mutation that bypassed the
        ``alloc_version`` bump, an entry injected under a wrong key) and
        placing from the table could double-book resources, so the placer
        refuses instead of silently continuing.  Stamps naming devices
        *outside* the node's sub-tree are skipped: symmetric reuse
        legitimately serves pod B a table derived on the isomorphic pod A
        (possibly in another shard's view) whose namesake devices have
        since drifted — the signature match already proves the content of
        *this* node's devices equals what the table was derived against.
        """
        local = set(self.subtree_device_names(node))
        stale = []
        known = self.topology.devices
        for name, fingerprint in stamps:
            if name not in local:
                continue
            device = known.get(name)
            if device is None:
                continue
            if device.allocation_fingerprint() != fingerprint:
                stale.append(name)
        if stale:
            counters = getattr(self.memo, "counters", None)
            if counters is not None:
                counters.increment("stale_rejections", by=len(stale))
            raise StaleMemoError(
                f"memo-served sub-tree table was derived against superseded "
                f"allocation states on devices {sorted(stale)}; the memo's "
                f"content-addressing invariant was violated"
            )

    # -- interval machinery ------------------------------------------------
    def instructions(self, start: int, end: int) -> list:
        cached = self._instructions.get((start, end))
        if cached is None:
            program = self.block_dag.program
            cached = [
                instr
                for block in self.ordered_blocks[start:end]
                for instr in block.instructions(program)
            ]
            self._instructions[(start, end)] = cached
        return cached

    def gain(self, node: ReducedNode, start: int, end: int) -> float:
        row = self._rows.get((id(node), start))
        if row is None:
            devices, _ = self.node_devices(node)
            row = self.scorer.gain_row(
                start,
                served_fraction=(
                    node.traffic_share if node.side != "root" else 1.0
                ),
                weights=self.node_weights(node),
                replicas=len(devices),
                end_lo=start,
                end_hi=self.num_blocks + 1,
            )
            self._rows[(id(node), start)] = row
            self.counters.increment("score_rows")
        self.counters.increment("scored_intervals")
        return row[end - start]

    def device_feasible(self, device, start: int, end: int) -> bool:
        """Memoised Algorithm 2 feasibility for one device and interval."""
        self.counters.increment("device_checks")
        key = (self.context_digest, start, end, device.dev_type,
               device.allocation_fingerprint())
        cached = self.memo.lookup_device(key)
        if cached is not MISS:
            self.counters.increment("device_memo_hits")
            return bool(cached)
        assignment = IntraDeviceAllocator(device).allocate(
            self.block_dag.program, self.instructions(start, end)
        )
        feasible = assignment is not None
        self.memo.store_device(key, feasible, (device.name,))
        return feasible

    def eval_interval(self, node: ReducedNode, start: int,
                      end: int) -> Optional[float]:
        """Memoised gain of hosting blocks [start, end) on *node*."""
        local_key = (id(node), start, end)
        if local_key in self._local_evals:
            return self._local_evals[local_key]
        result = self._eval_interval_memo(node, start, end)
        self._local_evals[local_key] = result
        return result

    def _eval_interval_memo(self, node: ReducedNode, start: int,
                            end: int) -> Optional[float]:
        self.counters.increment("interval_evals")
        key = (self.context_digest, self.node_digest(node), start, end)
        cached = self.memo.lookup_interval(key)
        if cached is not MISS:
            self.counters.increment("interval_memo_hits")
            return None if cached is INFEASIBLE else cached
        devices, bypass_devices = self.node_devices(node)
        consulted = [d.name for d in devices] + [b.name for b in bypass_devices]
        for device in devices:
            feasible = self.device_feasible(device, start, end)
            if not feasible and bypass_devices:
                # fall back to the bypass accelerator attached to this switch
                feasible = any(
                    self.device_feasible(bypass, start, end)
                    for bypass in bypass_devices
                )
            if not feasible:
                self.memo.store_interval(key, INFEASIBLE, consulted)
                return None
        gain = self.gain(node, start, end)
        self.memo.store_interval(key, gain, consulted)
        return gain

    # -- sub-tree table reuse ----------------------------------------------
    def table_key(self, side: str, node: ReducedNode) -> Tuple:
        return (side, self.context_digest, self.subtree_digest(node))

    def remap_table(self, stored_ids: Sequence[str],
                    stored_table: Dict[int, _Candidate],
                    node: ReducedNode) -> Optional[Dict[int, _Candidate]]:
        """Replay a stored table onto an isomorphic sub-tree.

        Equal sub-tree signatures guarantee position-wise content equality
        of the DFS pre-orders, so every stored gain/interval carries over
        verbatim and only the equivalence-class ids need rewriting.  Returns
        ``None`` (caller solves from scratch) when the correspondence is
        not a clean bijection — correctness never depends on reuse.
        """
        mapping = subtree_correspondence(stored_ids, node)
        if mapping is None:
            return None
        remapped: Dict[int, _Candidate] = {}
        for index, candidate in stored_table.items():
            try:
                assignments = [
                    (mapping[ec_id], start, end)
                    for ec_id, start, end in candidate.assignments
                ]
            except KeyError:
                return None
            remapped[index] = _Candidate(gain=candidate.gain,
                                         assignments=assignments)
        return remapped


class DPPlacer:
    """ClickINC's dynamic-programming placement engine.

    Parameters
    ----------
    topology:
        The (possibly shard-view) topology to place against.
    memo:
        Cross-epoch :class:`~repro.placement.memo.PlacementMemo`; a private
        one is created when omitted.  Shared placer instances (controller,
        service waves, runtime migrations) therefore share warm sub-solutions
        automatically.
    optimize:
        ``False`` selects the reference search path — no memoisation, no
        symmetric sub-tree reuse, no vectorised scoring — used by the
        differential tests as the ground truth the optimised path must match
        byte-for-byte.
    """

    def __init__(self, topology: NetworkTopology,
                 memo: Optional[PlacementMemo] = None,
                 optimize: bool = True) -> None:
        from repro.core.profiling import PlacementProfile  # local: avoids an
        # import cycle through repro.core.__init__

        self.topology = topology
        self.optimize = bool(optimize)
        self.memo = memo if memo is not None else PlacementMemo()
        self.profile = PlacementProfile()

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #
    def place(self, request: PlacementRequest) -> PlacementPlan:
        """Compute a *speculative* placement plan for *request*.

        The search is commit-free: it reads device allocations but never
        mutates them, so independent requests can be placed concurrently
        (even in separate worker processes holding a snapshot of the
        topology).  The returned plan records the allocation fingerprints of
        every device consulted; :meth:`commit` applies the plan's resources
        and can revalidate those fingerprints first (see :meth:`validate`).

        Raises :class:`~repro.exceptions.PlacementError` when no feasible
        placement exists on the devices along the requested paths.
        """
        timers = self.profile.timers
        start_time = time.perf_counter()
        with timers.stage("block_dag"):
            block_dag = build_block_dag(
                request.program,
                max_block_size=request.max_block_size if request.use_blocks else 1,
                merge=request.use_blocks,
            )
            ordered_blocks = block_dag.topological_order()
        with timers.stage("reduce_tree"):
            tree = build_reduced_tree(
                self.topology,
                request.source_groups,
                request.destination_group,
                traffic_rates=request.traffic_rates,
            )
        objective = self._make_objective(block_dag, tree, request)
        ctx = (
            _SearchContext(self, block_dag, ordered_blocks, objective, request)
            if self.optimize else None
        )

        with timers.stage("search"):
            candidate = self._solve(
                block_dag, ordered_blocks, tree, objective, request, ctx
            )
        if candidate is None or candidate.gain == NEG_INF:
            raise PlacementError(
                f"no feasible placement for {request.program.name!r} on the "
                f"paths from {list(request.source_groups)} to "
                f"{request.destination_group!r}"
            )

        elapsed = time.perf_counter() - start_time
        with timers.stage("materialise"):
            plan = self._materialise_plan(
                block_dag, ordered_blocks, tree, candidate, request, elapsed
            )
            self._stamp_fingerprints(plan, tree)
        return plan

    def _stamp_fingerprints(self, plan: PlacementPlan, tree: ReducedTree) -> None:
        """Record the allocation state the speculative search was based on."""
        consulted = set()
        for node in tree.all_nodes():
            consulted.update(node.ec.members)
            consulted.update(node.bypass)
        plan.device_fingerprints = self.topology.device_fingerprints(consulted)
        plan.topology_fingerprint = self.topology.allocation_fingerprint()
        plan.epoch = self.topology.allocation_epoch()

    def validate(self, plan: PlacementPlan,
                 restrict: Optional[Collection[str]] = None) -> List[str]:
        """Names of consulted devices whose allocations changed since *plan*.

        An empty list means the plan is still exactly the one a sequential
        placement against the live topology would produce, so it can be
        committed as-is.  An unchanged topology allocation epoch proves no
        device changed at all, skipping the per-device fingerprint sweep
        entirely; the fingerprints remain the fallback for plans placed
        against an older epoch (e.g. earlier commits of the same wave, or a
        worker snapshot).  Plans without fingerprints (hand-built, or from
        older cache entries) validate trivially.

        With *restrict*, only the named devices are checked — the shard
        prepare phase of a cross-shard two-phase commit validates a plan
        against each touched shard's own device set (this placer's topology
        being the shard view), ignoring consulted devices that belong to
        other shards.  Consulted devices unknown to this placer's topology
        are skipped for the same reason.
        """
        with self.profile.timers.stage("validate"):
            return self._validate(plan, restrict)

    def _validate(self, plan: PlacementPlan,
                  restrict: Optional[Collection[str]] = None) -> List[str]:
        if restrict is None:
            if (plan.epoch is not None
                    and plan.epoch == self.topology.allocation_epoch()):
                return []
        if plan.device_fingerprints:
            known = self.topology.devices
            selected = {
                name: fingerprint
                for name, fingerprint in plan.device_fingerprints.items()
                if name in known and (restrict is None or name in restrict)
            }
            live = self.topology.device_fingerprints(selected)
            conflicts = sorted(
                name for name, fingerprint in selected.items()
                if live.get(name) != fingerprint
            )
            if restrict is None and len(selected) < len(plan.device_fingerprints):
                # consulted devices this topology has never heard of cannot
                # be revalidated here — flag them rather than committing a
                # plan whose world we can only partially see
                conflicts.extend(sorted(
                    name for name in plan.device_fingerprints
                    if name not in known
                ))
            return conflicts
        if plan.topology_fingerprint is not None and restrict is None:
            if self.topology.allocation_fingerprint() != plan.topology_fingerprint:
                return ["<topology>"]
        return []

    def commit(self, plan: PlacementPlan, validate: bool = False) -> None:
        """Allocate the plan's resources on the topology's devices.

        With ``validate=True`` the plan's recorded device fingerprints are
        checked first and a
        :class:`~repro.exceptions.PlacementConflictError` is raised (before
        any allocation) when another commit has touched a consulted device —
        the caller should re-place sequentially against the live topology.
        """
        if validate:
            conflicts = self.validate(plan)
            if conflicts:
                raise PlacementConflictError(
                    f"speculative plan for {plan.program_name!r} conflicts on "
                    f"devices {conflicts}; re-place against the live topology",
                    conflicts=conflicts,
                )
        touched = set()
        for assignment in plan.assignments:
            for device_name, stage_assignment in assignment.stage_assignments.items():
                device = self.topology.device(device_name)
                for stage, demand in stage_assignment.stage_demands.items():
                    device.allocate_stage(stage, demand)
                device.deployed_programs.setdefault(plan.program_name, []).append(
                    assignment.block_id
                )
                # deployed_programs is part of the fingerprint payload
                device.alloc_version += 1
                touched.add(device_name)
        if touched:
            self.prune_memo(touched)

    def release(self, plan: PlacementPlan) -> None:
        """Release a previously committed plan's resources."""
        touched = set()
        for assignment in plan.assignments:
            for device_name, stage_assignment in assignment.stage_assignments.items():
                device = self.topology.device(device_name)
                for stage, demand in stage_assignment.stage_demands.items():
                    device.release_stage(stage, demand)
                device.deployed_programs.pop(plan.program_name, None)
                device.alloc_version += 1
                touched.add(device_name)
        if touched:
            self.prune_memo(touched)

    # ------------------------------------------------------------------ #
    # memo maintenance
    # ------------------------------------------------------------------ #
    def prune_memo(self, device_names: Collection[str]) -> int:
        """Drop memo entries that consulted any of *device_names*.

        The memo's keys are content-addressed, so this is a memory bound,
        not a correctness requirement: entries keyed on a superseded
        allocation fingerprint can never hit again.  Called internally by
        :meth:`commit`/:meth:`release`, by the pipeline's ``remove`` path
        alongside :meth:`ArtifactCache.prune_stale_plans
        <repro.core.cache.ArtifactCache.prune_stale_plans>`, and by worker
        re-syncs.  Returns the number of entries dropped.
        """
        removed = self.memo.prune_devices(device_names)
        if removed:
            self.profile.counters.increment("memo_pruned_entries", by=removed)
        return removed

    def sync_memo(self, base_fingerprints: Dict[str, str]) -> List[str]:
        """Prune sub-solutions invalidated since *base_fingerprints*.

        Computes :meth:`NetworkTopology.fingerprint_delta
        <repro.topology.network.NetworkTopology.fingerprint_delta>` against
        the given snapshot and prunes exactly the delta's devices, so after
        a single-device change only sub-trees touching that device re-solve.
        Returns the delta (the devices whose entries were dropped).
        """
        delta = self.topology.fingerprint_delta(base_fingerprints)
        if delta:
            self.prune_memo(delta)
        return delta

    # ------------------------------------------------------------------ #
    # DP core
    # ------------------------------------------------------------------ #
    def _make_objective(self, block_dag: BlockDAG, tree: ReducedTree,
                        request: PlacementRequest) -> PlacementObjective:
        total_instr = max(1, block_dag.total_instructions())
        candidate_devices = [
            self.topology.device(name)
            for node in tree.all_nodes()
            for name in node.ec.members
        ]
        total_resource_units = total_instr * max(1, len(candidate_devices))
        total_bits = sum(
            data.get("bits", 0) for _, _, data in block_dag.graph.edges(data=True)
        )
        weights = ObjectiveWeights.fixed()
        return PlacementObjective(
            total_resource_units=total_resource_units,
            total_transfer_bits=max(1, total_bits),
            weights=weights,
            adaptive=request.adaptive_weights,
        )

    def _solve(self, block_dag: BlockDAG, ordered_blocks: List[Block],
               tree: ReducedTree, objective: PlacementObjective,
               request: PlacementRequest,
               ctx: Optional[_SearchContext] = None) -> Optional[_Candidate]:
        num_blocks = len(ordered_blocks)
        root = tree.root
        counters = ctx.counters if ctx is not None else None

        client_children = [c for c in root.children if c.side == "client"]
        server_children = [c for c in root.children if c.side == "server"]

        # DFS_DP over the client-side sub-tree: for each child of the root,
        # table[i] = best partial solution covering blocks [0, i) below it.
        client_tables: List[Dict[int, _Candidate]] = [
            self._client_dp(child, block_dag, ordered_blocks, objective,
                            request, ctx)
            for child in client_children
        ]
        # DFS_DP over the server-side sub-tree: table[j] = best solution
        # covering blocks [j, n) at and below the child.
        server_tables: List[Dict[int, _Candidate]] = [
            self._server_dp(child, block_dag, ordered_blocks, objective,
                            request, ctx)
            for child in server_children
        ]

        best: Optional[_Candidate] = None
        # combine: client children cover [0, i_c); root hosts [min_i, j);
        # server children cover [j, n).  The join only needs each client
        # combination's minimum index, maximum index and gain total, so
        # instead of enumerating the cartesian product of the child tables
        # (exponential in the number of pods, and formerly capped — the cap
        # could starve better combinations) the children are folded one at a
        # time over the O(num_blocks^2) state space (i_min, i_max).  This is
        # exact: per state it keeps the best achievable child-gain sum, and
        # ties keep the first candidate in deterministic (sorted) order.
        join_states: Optional[Dict[Tuple[int, int], _Candidate]] = None
        for table in client_tables:
            options = sorted(table.items())
            if join_states is None:
                join_states = {
                    (index, index): _Candidate(
                        gain=candidate.gain,
                        assignments=list(candidate.assignments),
                    )
                    for index, candidate in options
                }
                continue
            merged: Dict[Tuple[int, int], _Candidate] = {}
            for (state_lo, state_hi), below in sorted(join_states.items()):
                for index, candidate in options:
                    key = (min(state_lo, index), max(state_hi, index))
                    gain = below.gain + candidate.gain
                    existing = merged.get(key)
                    if existing is None or gain > existing.gain:
                        merged[key] = _Candidate(
                            gain=gain,
                            assignments=below.assignments + candidate.assignments,
                        )
            join_states = merged
        if join_states is None:
            # no client children: the root must host the program from block 0
            join_states = {(0, 0): _Candidate(gain=0.0)}
        if counters is not None and join_states:
            counters.increment("product_combos", by=len(join_states))

        for (i_min, i_max), below in sorted(join_states.items()):
            below_gain = below.gain
            below_assignments = below.assignments
            if below_gain == NEG_INF:
                continue
            for j in range(i_max, num_blocks + 1):
                root_interval = (i_min, j)
                root_eval = self._evaluate_interval(
                    root, root_interval, block_dag, ordered_blocks, objective,
                    request, ctx
                )
                if root_eval is None:
                    continue
                root_gain, _ = root_eval
                # server side must cover [j, n) on every server child
                server_gain = 0.0
                server_assignments: List[Tuple[str, int, int]] = []
                feasible = True
                if server_tables:
                    for table in server_tables:
                        candidate = table.get(j)
                        if candidate is None or candidate.gain == NEG_INF:
                            feasible = False
                            break
                        server_gain += candidate.gain
                        server_assignments.extend(candidate.assignments)
                else:
                    feasible = j == num_blocks
                if not feasible:
                    continue
                total_gain = below_gain + root_gain + server_gain
                if best is None or total_gain > best.gain:
                    assignments = list(below_assignments)
                    if j > i_min:
                        assignments.append((root.name, i_min, j))
                    assignments.extend(server_assignments)
                    best = _Candidate(gain=total_gain, assignments=assignments)
        return best

    def _client_dp(self, node: ReducedNode, block_dag: BlockDAG,
                   ordered_blocks: List[Block], objective: PlacementObjective,
                   request: PlacementRequest,
                   ctx: Optional[_SearchContext] = None) -> Dict[int, _Candidate]:
        """Bottom-up DP on the client sub-tree (memoised when ``ctx`` is set).

        Returns a table mapping "blocks [0, i) are covered at or below this
        node" to the best partial candidate.  Traffic flows leaf → root, so a
        node's own interval sits *after* its children's intervals.
        """
        return self._memoised_table(
            "client", node, ctx,
            lambda: self._client_dp_table(
                node, block_dag, ordered_blocks, objective, request, ctx
            ),
        )

    def _memoised_table(self, side: str, node: ReducedNode,
                        ctx: Optional[_SearchContext],
                        solve) -> Dict[int, _Candidate]:
        """Serve a sub-tree DP table from the memo, or derive and store it.

        A hit is trusted only after :meth:`_SearchContext.verify_table_stamps`
        confirms the stored table's consulted devices still carry the
        allocation fingerprints recorded at derivation time.  On a miss
        against a :class:`~repro.placement.memo.SharedPlacementMemo`, the
        derive runs under the memo's per-key single-flight guard, so
        concurrent in-process users (controller shards on symmetric pods)
        solve each distinct sub-tree once: the second thread blocks, then
        hits on its re-check.
        """
        if ctx is None:
            return solve()
        table_key = ctx.table_key(side, node)
        table = self._memo_table_hit(ctx, table_key, node)
        if table is not None:
            return table
        guard = getattr(ctx.memo, "table_guard", None)
        if guard is not None:
            with guard(table_key):
                table = self._memo_table_hit(ctx, table_key, node)
                if table is not None:
                    return table
                return self._solve_and_store(ctx, table_key, node, solve)
        return self._solve_and_store(ctx, table_key, node, solve)

    def _memo_table_hit(self, ctx: _SearchContext, table_key: Tuple,
                        node: ReducedNode) -> Optional[Dict[int, _Candidate]]:
        stored = ctx.memo.lookup_table(table_key)
        if stored is MISS:
            return None
        if len(stored) == 3:
            stored_ids, stored_table, stamps = stored
        else:  # pre-stamp entry (e.g. a hand-built PlacementMemo in tests)
            stored_ids, stored_table = stored
            stamps = ()
        ctx.verify_table_stamps(stamps, node)
        remapped = ctx.remap_table(stored_ids, stored_table, node)
        if remapped is None:
            return None
        ctx.counters.increment("subtree_memo_hits")
        return remapped

    def _solve_and_store(self, ctx: _SearchContext, table_key: Tuple,
                         node: ReducedNode, solve) -> Dict[int, _Candidate]:
        ctx.counters.increment("subtree_solves")
        table = solve()
        ctx.memo.store_table(
            table_key,
            (subtree_class_ids(node), table, ctx.table_stamps(node)),
            ctx.subtree_device_names(node),
        )
        return table

    def _client_dp_table(self, node: ReducedNode, block_dag: BlockDAG,
                         ordered_blocks: List[Block],
                         objective: PlacementObjective,
                         request: PlacementRequest,
                         ctx: Optional[_SearchContext]) -> Dict[int, _Candidate]:
        num_blocks = len(ordered_blocks)
        if not node.children:
            table: Dict[int, _Candidate] = {}
            for end in range(0, num_blocks + 1):
                interval = (0, end)
                result = self._evaluate_interval(
                    node, interval, block_dag, ordered_blocks, objective,
                    request, ctx
                )
                if result is None:
                    if request.prune:
                        break
                    continue
                gain, _ = result
                assignments = [(node.name, 0, end)] if end > 0 else []
                table[end] = _Candidate(gain=gain, assignments=assignments)
            return table

        child_tables = [
            self._client_dp(child, block_dag, ordered_blocks, objective,
                            request, ctx)
            for child in node.children
        ]
        table: Dict[int, _Candidate] = {}
        counters = ctx.counters if ctx is not None else None
        for combo in _product_limited([sorted(t.items()) for t in child_tables],
                                      counters=counters):
            i_values = [i for i, _ in combo]
            base_gain = sum(c.gain for _, c in combo)
            base_assignments = [a for _, c in combo for a in c.assignments]
            i_min = min(i_values)
            i_max = max(i_values)
            for end in range(i_max, num_blocks + 1):
                interval = (i_min, end)
                result = self._evaluate_interval(
                    node, interval, block_dag, ordered_blocks, objective,
                    request, ctx
                )
                if result is None:
                    if request.prune:
                        break
                    continue
                gain, _ = result
                total = base_gain + gain
                existing = table.get(end)
                if existing is None or total > existing.gain:
                    assignments = list(base_assignments)
                    if end > i_min:
                        assignments.append((node.name, i_min, end))
                    table[end] = _Candidate(gain=total, assignments=assignments)
        return table

    def _server_dp(self, node: ReducedNode, block_dag: BlockDAG,
                   ordered_blocks: List[Block], objective: PlacementObjective,
                   request: PlacementRequest,
                   ctx: Optional[_SearchContext] = None) -> Dict[int, _Candidate]:
        """Top-down DP on the server sub-tree (memoised when ``ctx`` is set).

        Returns a table mapping "traffic arrives at this node with blocks
        [0, j) already executed" to the best candidate that finishes the
        program at or below the node.
        """
        return self._memoised_table(
            "server", node, ctx,
            lambda: self._server_dp_table(
                node, block_dag, ordered_blocks, objective, request, ctx
            ),
        )

    def _server_dp_table(self, node: ReducedNode, block_dag: BlockDAG,
                         ordered_blocks: List[Block],
                         objective: PlacementObjective,
                         request: PlacementRequest,
                         ctx: Optional[_SearchContext]) -> Dict[int, _Candidate]:
        num_blocks = len(ordered_blocks)
        child_tables = [
            self._server_dp(child, block_dag, ordered_blocks, objective,
                            request, ctx)
            for child in node.children
        ]
        table: Dict[int, _Candidate] = {}
        for start in range(0, num_blocks + 1):
            best: Optional[_Candidate] = None
            for end in range(start, num_blocks + 1):
                interval = (start, end)
                result = self._evaluate_interval(
                    node, interval, block_dag, ordered_blocks, objective,
                    request, ctx
                )
                if result is None:
                    if request.prune:
                        break
                    continue
                gain, _ = result
                if child_tables:
                    child_gain = 0.0
                    child_assignments: List[Tuple[str, int, int]] = []
                    feasible = True
                    for child_table in child_tables:
                        candidate = child_table.get(end)
                        if candidate is None:
                            feasible = False
                            break
                        child_gain += candidate.gain
                        child_assignments.extend(candidate.assignments)
                    if not feasible:
                        continue
                    total = gain + child_gain
                    assignments = (
                        [(node.name, start, end)] if end > start else []
                    ) + child_assignments
                else:
                    if end != num_blocks:
                        continue
                    total = gain
                    assignments = [(node.name, start, end)] if end > start else []
                if best is None or total > best.gain:
                    best = _Candidate(gain=total, assignments=assignments)
            if best is not None:
                table[start] = best
        return table

    # ------------------------------------------------------------------ #
    # interval evaluation (calls Algorithm 2 per representative device)
    # ------------------------------------------------------------------ #
    def _evaluate_interval(self, node: ReducedNode, interval: Tuple[int, int],
                           block_dag: BlockDAG, ordered_blocks: List[Block],
                           objective: PlacementObjective,
                           request: PlacementRequest,
                           ctx: Optional[_SearchContext] = None
                           ) -> Optional[Tuple[float, Dict[str, StageAssignment]]]:
        start, end = interval
        if end < start:
            return None
        if end == start:
            return 0.0, {}
        if ctx is not None:
            gain = ctx.eval_interval(node, start, end)
            # the search only consumes the gain; stage assignments are
            # recomputed during materialisation, so none are carried here
            return None if gain is None else (gain, {})
        blocks = ordered_blocks[start:end]
        instructions = [
            instr for block in blocks for instr in block.instructions(block_dag.program)
        ]
        devices = [self.topology.device(name) for name in node.ec.members]
        bypass_devices = [self.topology.device(name) for name in node.bypass]
        assignments: Dict[str, StageAssignment] = {}
        for device in devices:
            allocator = IntraDeviceAllocator(device)
            assignment = allocator.allocate(block_dag.program, instructions)
            if assignment is None and bypass_devices:
                # fall back to the bypass accelerator attached to this switch
                for bypass in bypass_devices:
                    assignment = IntraDeviceAllocator(bypass).allocate(
                        block_dag.program, instructions
                    )
                    if assignment is not None:
                        break
            if assignment is None:
                return None
            assignments[assignment.device_name] = assignment

        weights = objective.current_weights(devices)
        instruction_count = len(instructions)
        transfer_bits = self._interval_cut_bits(block_dag, ordered_blocks, start, end)
        gain = objective.gain(
            served_fraction=node.traffic_share if node.side != "root" else 1.0,
            instruction_count=instruction_count,
            transfer_bits=transfer_bits,
            weights=weights,
            replicas=len(devices),
        )
        return gain, assignments

    @staticmethod
    def _interval_cut_bits(block_dag: BlockDAG, ordered_blocks: List[Block],
                           start: int, end: int) -> int:
        inside = {block.block_id for block in ordered_blocks[start:end]}
        bits = 0
        for src, dst, data in block_dag.graph.edges(data=True):
            src_in = src in inside
            dst_in = dst in inside
            if src_in != dst_in:
                bits += data.get("bits", 0)
        return bits

    # ------------------------------------------------------------------ #
    # plan materialisation
    # ------------------------------------------------------------------ #
    def _materialise_plan(self, block_dag: BlockDAG, ordered_blocks: List[Block],
                          tree: ReducedTree, candidate: _Candidate,
                          request: PlacementRequest,
                          elapsed: float) -> PlacementPlan:
        node_by_name = {node.name: node for node in tree.all_nodes()}
        plan = PlacementPlan(
            program_name=request.program.name,
            block_dag=block_dag,
            gain=candidate.gain,
            algorithm="dp",
            compile_time_s=elapsed,
        )
        position_of = {block.block_id: idx for idx, block in enumerate(ordered_blocks)}
        seen: Dict[Tuple[str, int], bool] = {}
        for ec_id, start, end in candidate.assignments:
            node = node_by_name[ec_id]
            blocks = ordered_blocks[start:end]
            instructions = [
                i for b in blocks for i in b.instructions(block_dag.program)
            ]
            for block in blocks:
                key = (ec_id, block.block_id)
                if key in seen:
                    continue
                seen[key] = True
            stage_assignments: Dict[str, StageAssignment] = {}
            devices = [self.topology.device(name) for name in node.ec.members]
            used_names: List[str] = []
            for device in devices:
                assignment = IntraDeviceAllocator(device).allocate(
                    block_dag.program, instructions
                )
                if assignment is None and node.bypass:
                    for bypass_name in node.bypass:
                        bypass = self.topology.device(bypass_name)
                        assignment = IntraDeviceAllocator(bypass).allocate(
                            block_dag.program, instructions
                        )
                        if assignment is not None:
                            break
                if assignment is None:
                    raise PlacementError(
                        f"internal error: interval {(start, end)} no longer fits "
                        f"on {device.name}"
                    )
                stage_assignments[assignment.device_name] = assignment
                if assignment.device_name not in used_names:
                    used_names.append(assignment.device_name)
            for index, block in enumerate(blocks):
                plan.assignments.append(
                    BlockAssignment(
                        block_id=block.block_id,
                        ec_id=ec_id,
                        device_names=list(used_names),
                        step=position_of[block.block_id],
                        # the stage assignment covers the whole interval, so it
                        # is attached (and later committed/released) only once
                        stage_assignments=stage_assignments if index == 0 else {},
                        replicated=len(used_names) > 1,
                    )
                )
        plan.transfer_bits = sum(
            block_dag.transfer_bits(src, dst)
            for src, dst in block_dag.edges()
        )
        plan.metadata["tree_nodes"] = [n.name for n in tree.all_nodes()]
        return plan


def _product_limited(tables: List[List[Tuple[int, _Candidate]]],
                     limit: int = 200000, counters=None):
    """Cartesian product over per-child DP tables with a safety cap.

    Children whose tables carry identical (index, gain) entries — symmetric
    siblings such as the equivalent pods of a fat-tree — would otherwise
    enumerate every permutation of the same multiset of choices, and the
    duplicates could crowd better combinations out of the cap.  Identical
    children are grouped and only one representative per permutation class
    is yielded (option indices non-decreasing within each group), so the
    cap is spent on distinct placements.  All permutations of a multiset
    share the same total gain, minimum and maximum index, hence the best
    candidate found is unaffected.
    """
    if not tables:
        yield []
        return
    contents = [tuple((i, c.gain) for i, c in table) for table in tables]
    groups: Dict[Tuple, List[int]] = {}
    for position, content in enumerate(contents):
        groups.setdefault(content, []).append(position)
    group_positions = list(groups.values())
    if counters is not None:
        for positions in group_positions:
            if len(positions) > 1:
                counters.increment("product_symmetric_groups")
    count = 0
    chosen: List[Optional[Tuple[int, _Candidate]]] = [None] * len(tables)

    def recurse(group_index: int):
        nonlocal count
        if count > limit:
            return
        if group_index == len(group_positions):
            count += 1
            if counters is not None:
                counters.increment("product_combos")
            yield list(chosen)
            return
        positions = group_positions[group_index]
        options = len(tables[positions[0]])
        for combo in itertools.combinations_with_replacement(
                range(options), len(positions)):
            for position, option_index in zip(positions, combo):
                chosen[position] = tables[position][option_index]
            yield from recurse(group_index + 1)

    yield from recurse(0)
