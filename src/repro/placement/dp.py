"""Multi-path dynamic-programming placement (paper §5.4, Algorithm 1).

The placer works on the reduced topology tree of §5.3: the client-side
sub-tree is traversed from the source leaves up to the root, the server-side
sub-tree from the root down to the destination leaf, and the two partial
solutions are joined at the root (Eq. 2).

Because the block DAG is topologically ordered, a placement assigns each
equivalence class a *contiguous interval* of the block sequence: a path from
a source leaf to the destination executes the program front to back as the
packet travels.  The DP state is therefore "how many blocks have been placed
so far along every path through this node", and the recurrence tries every
interval the current node could host, pruning intervals whose capability or
resource requirements the node cannot satisfy (paper's constraint pruning).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Collection, Dict, List, Optional, Sequence, Tuple

from repro.exceptions import PlacementConflictError, PlacementError
from repro.ir.program import IRProgram
from repro.placement.blocks import Block, BlockDAG, build_block_dag
from repro.placement.intra import IntraDeviceAllocator, StageAssignment
from repro.placement.objective import ObjectiveWeights, PlacementObjective
from repro.placement.plan import BlockAssignment, PlacementPlan
from repro.topology.equivalence import ReducedNode, ReducedTree, build_reduced_tree
from repro.topology.network import NetworkTopology

NEG_INF = float("-inf")


@dataclass
class PlacementRequest:
    """Everything the placer needs to place one program.

    Attributes
    ----------
    program:
        The compiled IR program.
    source_groups:
        Host groups whose traffic the program must process (clients/workers).
    destination_group:
        Host group the traffic is destined to (servers / parameter server).
    traffic_rates:
        Optional per-source traffic rates (packets per second) used to weigh
        paths; defaults to uniform.
    max_block_size:
        Block-construction size threshold.
    use_blocks:
        Disable to place individual instructions (Fig. 14 ablation).
    adaptive_weights:
        Use the adaptive weight schedule of §5.4 (Table 5 ablation).
    """

    program: IRProgram
    source_groups: Sequence[str]
    destination_group: str
    traffic_rates: Optional[Dict[str, float]] = None
    max_block_size: int = 16
    use_blocks: bool = True
    adaptive_weights: bool = True
    prune: bool = True


@dataclass
class _Candidate:
    """A partial DP solution at one node: gain + chosen intervals below it."""

    gain: float
    assignments: List[Tuple[str, int, int]] = field(default_factory=list)
    # list of (ec_id, start_block_index, end_block_index) intervals


class DPPlacer:
    """ClickINC's dynamic-programming placement engine."""

    def __init__(self, topology: NetworkTopology) -> None:
        self.topology = topology

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #
    def place(self, request: PlacementRequest) -> PlacementPlan:
        """Compute a *speculative* placement plan for *request*.

        The search is commit-free: it reads device allocations but never
        mutates them, so independent requests can be placed concurrently
        (even in separate worker processes holding a snapshot of the
        topology).  The returned plan records the allocation fingerprints of
        every device consulted; :meth:`commit` applies the plan's resources
        and can revalidate those fingerprints first (see :meth:`validate`).

        Raises :class:`~repro.exceptions.PlacementError` when no feasible
        placement exists on the devices along the requested paths.
        """
        start_time = time.perf_counter()
        block_dag = build_block_dag(
            request.program,
            max_block_size=request.max_block_size if request.use_blocks else 1,
            merge=request.use_blocks,
        )
        ordered_blocks = block_dag.topological_order()
        tree = build_reduced_tree(
            self.topology,
            request.source_groups,
            request.destination_group,
            traffic_rates=request.traffic_rates,
        )
        objective = self._make_objective(block_dag, tree, request)

        candidate = self._solve(block_dag, ordered_blocks, tree, objective, request)
        if candidate is None or candidate.gain == NEG_INF:
            raise PlacementError(
                f"no feasible placement for {request.program.name!r} on the "
                f"paths from {list(request.source_groups)} to "
                f"{request.destination_group!r}"
            )

        elapsed = time.perf_counter() - start_time
        plan = self._materialise_plan(
            block_dag, ordered_blocks, tree, candidate, request, elapsed
        )
        self._stamp_fingerprints(plan, tree)
        return plan

    def _stamp_fingerprints(self, plan: PlacementPlan, tree: ReducedTree) -> None:
        """Record the allocation state the speculative search was based on."""
        consulted = set()
        for node in tree.all_nodes():
            consulted.update(node.ec.members)
            consulted.update(node.bypass)
        plan.device_fingerprints = self.topology.device_fingerprints(consulted)
        plan.topology_fingerprint = self.topology.allocation_fingerprint()
        plan.epoch = self.topology.allocation_epoch()

    def validate(self, plan: PlacementPlan,
                 restrict: Optional[Collection[str]] = None) -> List[str]:
        """Names of consulted devices whose allocations changed since *plan*.

        An empty list means the plan is still exactly the one a sequential
        placement against the live topology would produce, so it can be
        committed as-is.  An unchanged topology allocation epoch proves no
        device changed at all, skipping the per-device fingerprint sweep
        entirely; the fingerprints remain the fallback for plans placed
        against an older epoch (e.g. earlier commits of the same wave, or a
        worker snapshot).  Plans without fingerprints (hand-built, or from
        older cache entries) validate trivially.

        With *restrict*, only the named devices are checked — the shard
        prepare phase of a cross-shard two-phase commit validates a plan
        against each touched shard's own device set (this placer's topology
        being the shard view), ignoring consulted devices that belong to
        other shards.  Consulted devices unknown to this placer's topology
        are skipped for the same reason.
        """
        if restrict is None:
            if (plan.epoch is not None
                    and plan.epoch == self.topology.allocation_epoch()):
                return []
        if plan.device_fingerprints:
            known = self.topology.devices
            selected = {
                name: fingerprint
                for name, fingerprint in plan.device_fingerprints.items()
                if name in known and (restrict is None or name in restrict)
            }
            live = self.topology.device_fingerprints(selected)
            conflicts = sorted(
                name for name, fingerprint in selected.items()
                if live.get(name) != fingerprint
            )
            if restrict is None and len(selected) < len(plan.device_fingerprints):
                # consulted devices this topology has never heard of cannot
                # be revalidated here — flag them rather than committing a
                # plan whose world we can only partially see
                conflicts.extend(sorted(
                    name for name in plan.device_fingerprints
                    if name not in known
                ))
            return conflicts
        if plan.topology_fingerprint is not None and restrict is None:
            if self.topology.allocation_fingerprint() != plan.topology_fingerprint:
                return ["<topology>"]
        return []

    def commit(self, plan: PlacementPlan, validate: bool = False) -> None:
        """Allocate the plan's resources on the topology's devices.

        With ``validate=True`` the plan's recorded device fingerprints are
        checked first and a
        :class:`~repro.exceptions.PlacementConflictError` is raised (before
        any allocation) when another commit has touched a consulted device —
        the caller should re-place sequentially against the live topology.
        """
        if validate:
            conflicts = self.validate(plan)
            if conflicts:
                raise PlacementConflictError(
                    f"speculative plan for {plan.program_name!r} conflicts on "
                    f"devices {conflicts}; re-place against the live topology",
                    conflicts=conflicts,
                )
        for assignment in plan.assignments:
            for device_name, stage_assignment in assignment.stage_assignments.items():
                device = self.topology.device(device_name)
                for stage, demand in stage_assignment.stage_demands.items():
                    device.allocate_stage(stage, demand)
                device.deployed_programs.setdefault(plan.program_name, []).append(
                    assignment.block_id
                )
                # deployed_programs is part of the fingerprint payload
                device.alloc_version += 1

    def release(self, plan: PlacementPlan) -> None:
        """Release a previously committed plan's resources."""
        for assignment in plan.assignments:
            for device_name, stage_assignment in assignment.stage_assignments.items():
                device = self.topology.device(device_name)
                for stage, demand in stage_assignment.stage_demands.items():
                    device.release_stage(stage, demand)
                device.deployed_programs.pop(plan.program_name, None)
                device.alloc_version += 1

    # ------------------------------------------------------------------ #
    # DP core
    # ------------------------------------------------------------------ #
    def _make_objective(self, block_dag: BlockDAG, tree: ReducedTree,
                        request: PlacementRequest) -> PlacementObjective:
        total_instr = max(1, block_dag.total_instructions())
        candidate_devices = [
            self.topology.device(name)
            for node in tree.all_nodes()
            for name in node.ec.members
        ]
        total_resource_units = total_instr * max(1, len(candidate_devices))
        total_bits = sum(
            data.get("bits", 0) for _, _, data in block_dag.graph.edges(data=True)
        )
        weights = ObjectiveWeights.fixed()
        return PlacementObjective(
            total_resource_units=total_resource_units,
            total_transfer_bits=max(1, total_bits),
            weights=weights,
            adaptive=request.adaptive_weights,
        )

    def _solve(self, block_dag: BlockDAG, ordered_blocks: List[Block],
               tree: ReducedTree, objective: PlacementObjective,
               request: PlacementRequest) -> Optional[_Candidate]:
        num_blocks = len(ordered_blocks)
        root = tree.root

        client_children = [c for c in root.children if c.side == "client"]
        server_children = [c for c in root.children if c.side == "server"]

        # DFS_DP over the client-side sub-tree: for each child of the root,
        # table[i] = best partial solution covering blocks [0, i) below it.
        client_tables: List[Dict[int, _Candidate]] = [
            self._client_dp(child, block_dag, ordered_blocks, objective, request)
            for child in client_children
        ]
        # DFS_DP over the server-side sub-tree: table[j] = best solution
        # covering blocks [j, n) at and below the child.
        server_tables: List[Dict[int, _Candidate]] = [
            self._server_dp(child, block_dag, ordered_blocks, objective, request)
            for child in server_children
        ]

        best: Optional[_Candidate] = None
        # combine: client children cover [0, i_c); root hosts [min_i, j);
        # server children cover [j, n).
        client_options: List[List[Tuple[int, _Candidate]]] = [
            sorted(table.items()) for table in client_tables
        ]
        if not client_options:
            client_options = [[(0, _Candidate(gain=0.0))]]
        server_n = num_blocks

        for combo in _product_limited(client_options):
            i_values = [i for i, _ in combo]
            i_min = min(i_values) if i_values else 0
            below_gain = sum(c.gain for _, c in combo)
            below_assignments = [a for _, c in combo for a in c.assignments]
            if below_gain == NEG_INF:
                continue
            for j in range(max(i_values) if i_values else 0, num_blocks + 1):
                root_interval = (i_min, j)
                root_eval = self._evaluate_interval(
                    root, root_interval, block_dag, ordered_blocks, objective, request
                )
                if root_eval is None:
                    continue
                root_gain, _ = root_eval
                # server side must cover [j, n) on every server child
                server_gain = 0.0
                server_assignments: List[Tuple[str, int, int]] = []
                feasible = True
                if server_tables:
                    for table in server_tables:
                        candidate = table.get(j)
                        if candidate is None or candidate.gain == NEG_INF:
                            feasible = False
                            break
                        server_gain += candidate.gain
                        server_assignments.extend(candidate.assignments)
                else:
                    feasible = j == num_blocks
                if not feasible:
                    continue
                total_gain = below_gain + root_gain + server_gain
                if best is None or total_gain > best.gain:
                    assignments = list(below_assignments)
                    if j > i_min:
                        assignments.append((root.name, i_min, j))
                    assignments.extend(server_assignments)
                    best = _Candidate(gain=total_gain, assignments=assignments)
        return best

    def _client_dp(self, node: ReducedNode, block_dag: BlockDAG,
                   ordered_blocks: List[Block], objective: PlacementObjective,
                   request: PlacementRequest) -> Dict[int, _Candidate]:
        """Bottom-up DP on the client sub-tree.

        Returns a table mapping "blocks [0, i) are covered at or below this
        node" to the best partial candidate.  Traffic flows leaf → root, so a
        node's own interval sits *after* its children's intervals.
        """
        num_blocks = len(ordered_blocks)
        if not node.children:
            table: Dict[int, _Candidate] = {}
            for end in range(0, num_blocks + 1):
                interval = (0, end)
                result = self._evaluate_interval(
                    node, interval, block_dag, ordered_blocks, objective, request
                )
                if result is None:
                    if request.prune:
                        break
                    continue
                gain, _ = result
                assignments = [(node.name, 0, end)] if end > 0 else []
                table[end] = _Candidate(gain=gain, assignments=assignments)
            return table

        child_tables = [
            self._client_dp(child, block_dag, ordered_blocks, objective, request)
            for child in node.children
        ]
        table: Dict[int, _Candidate] = {}
        for combo in _product_limited([sorted(t.items()) for t in child_tables]):
            i_values = [i for i, _ in combo]
            base_gain = sum(c.gain for _, c in combo)
            base_assignments = [a for _, c in combo for a in c.assignments]
            i_min = min(i_values)
            i_max = max(i_values)
            for end in range(i_max, num_blocks + 1):
                interval = (i_min, end)
                result = self._evaluate_interval(
                    node, interval, block_dag, ordered_blocks, objective, request
                )
                if result is None:
                    if request.prune:
                        break
                    continue
                gain, _ = result
                total = base_gain + gain
                existing = table.get(end)
                if existing is None or total > existing.gain:
                    assignments = list(base_assignments)
                    if end > i_min:
                        assignments.append((node.name, i_min, end))
                    table[end] = _Candidate(gain=total, assignments=assignments)
        return table

    def _server_dp(self, node: ReducedNode, block_dag: BlockDAG,
                   ordered_blocks: List[Block], objective: PlacementObjective,
                   request: PlacementRequest) -> Dict[int, _Candidate]:
        """Top-down DP on the server sub-tree.

        Returns a table mapping "traffic arrives at this node with blocks
        [0, j) already executed" to the best candidate that finishes the
        program at or below the node.
        """
        num_blocks = len(ordered_blocks)
        child_tables = [
            self._server_dp(child, block_dag, ordered_blocks, objective, request)
            for child in node.children
        ]
        table: Dict[int, _Candidate] = {}
        for start in range(0, num_blocks + 1):
            best: Optional[_Candidate] = None
            for end in range(start, num_blocks + 1):
                interval = (start, end)
                result = self._evaluate_interval(
                    node, interval, block_dag, ordered_blocks, objective, request
                )
                if result is None:
                    if request.prune:
                        break
                    continue
                gain, _ = result
                if child_tables:
                    child_gain = 0.0
                    child_assignments: List[Tuple[str, int, int]] = []
                    feasible = True
                    for child_table in child_tables:
                        candidate = child_table.get(end)
                        if candidate is None:
                            feasible = False
                            break
                        child_gain += candidate.gain
                        child_assignments.extend(candidate.assignments)
                    if not feasible:
                        continue
                    total = gain + child_gain
                    assignments = (
                        [(node.name, start, end)] if end > start else []
                    ) + child_assignments
                else:
                    if end != num_blocks:
                        continue
                    total = gain
                    assignments = [(node.name, start, end)] if end > start else []
                if best is None or total > best.gain:
                    best = _Candidate(gain=total, assignments=assignments)
            if best is not None:
                table[start] = best
        return table

    # ------------------------------------------------------------------ #
    # interval evaluation (calls Algorithm 2 per representative device)
    # ------------------------------------------------------------------ #
    def _evaluate_interval(self, node: ReducedNode, interval: Tuple[int, int],
                           block_dag: BlockDAG, ordered_blocks: List[Block],
                           objective: PlacementObjective,
                           request: PlacementRequest
                           ) -> Optional[Tuple[float, Dict[str, StageAssignment]]]:
        start, end = interval
        if end < start:
            return None
        if end == start:
            return 0.0, {}
        blocks = ordered_blocks[start:end]
        instructions = [
            instr for block in blocks for instr in block.instructions(block_dag.program)
        ]
        devices = [self.topology.device(name) for name in node.ec.members]
        bypass_devices = [self.topology.device(name) for name in node.bypass]
        assignments: Dict[str, StageAssignment] = {}
        for device in devices:
            allocator = IntraDeviceAllocator(device)
            assignment = allocator.allocate(block_dag.program, instructions)
            if assignment is None and bypass_devices:
                # fall back to the bypass accelerator attached to this switch
                for bypass in bypass_devices:
                    assignment = IntraDeviceAllocator(bypass).allocate(
                        block_dag.program, instructions
                    )
                    if assignment is not None:
                        break
            if assignment is None:
                return None
            assignments[assignment.device_name] = assignment

        weights = objective.current_weights(devices)
        instruction_count = len(instructions)
        transfer_bits = self._interval_cut_bits(block_dag, ordered_blocks, start, end)
        gain = objective.gain(
            served_fraction=node.traffic_share if node.side != "root" else 1.0,
            instruction_count=instruction_count,
            transfer_bits=transfer_bits,
            weights=weights,
            replicas=len(devices),
        )
        return gain, assignments

    @staticmethod
    def _interval_cut_bits(block_dag: BlockDAG, ordered_blocks: List[Block],
                           start: int, end: int) -> int:
        inside = {block.block_id for block in ordered_blocks[start:end]}
        bits = 0
        for src, dst, data in block_dag.graph.edges(data=True):
            src_in = src in inside
            dst_in = dst in inside
            if src_in != dst_in:
                bits += data.get("bits", 0)
        return bits

    # ------------------------------------------------------------------ #
    # plan materialisation
    # ------------------------------------------------------------------ #
    def _materialise_plan(self, block_dag: BlockDAG, ordered_blocks: List[Block],
                          tree: ReducedTree, candidate: _Candidate,
                          request: PlacementRequest,
                          elapsed: float) -> PlacementPlan:
        node_by_name = {node.name: node for node in tree.all_nodes()}
        plan = PlacementPlan(
            program_name=request.program.name,
            block_dag=block_dag,
            gain=candidate.gain,
            algorithm="dp",
            compile_time_s=elapsed,
        )
        position_of = {block.block_id: idx for idx, block in enumerate(ordered_blocks)}
        seen: Dict[Tuple[str, int], bool] = {}
        for ec_id, start, end in candidate.assignments:
            node = node_by_name[ec_id]
            blocks = ordered_blocks[start:end]
            instructions = [
                i for b in blocks for i in b.instructions(block_dag.program)
            ]
            for block in blocks:
                key = (ec_id, block.block_id)
                if key in seen:
                    continue
                seen[key] = True
            stage_assignments: Dict[str, StageAssignment] = {}
            devices = [self.topology.device(name) for name in node.ec.members]
            used_names: List[str] = []
            for device in devices:
                assignment = IntraDeviceAllocator(device).allocate(
                    block_dag.program, instructions
                )
                if assignment is None and node.bypass:
                    for bypass_name in node.bypass:
                        bypass = self.topology.device(bypass_name)
                        assignment = IntraDeviceAllocator(bypass).allocate(
                            block_dag.program, instructions
                        )
                        if assignment is not None:
                            break
                if assignment is None:
                    raise PlacementError(
                        f"internal error: interval {(start, end)} no longer fits "
                        f"on {device.name}"
                    )
                stage_assignments[assignment.device_name] = assignment
                if assignment.device_name not in used_names:
                    used_names.append(assignment.device_name)
            for index, block in enumerate(blocks):
                plan.assignments.append(
                    BlockAssignment(
                        block_id=block.block_id,
                        ec_id=ec_id,
                        device_names=list(used_names),
                        step=position_of[block.block_id],
                        # the stage assignment covers the whole interval, so it
                        # is attached (and later committed/released) only once
                        stage_assignments=stage_assignments if index == 0 else {},
                        replicated=len(used_names) > 1,
                    )
                )
        plan.transfer_bits = sum(
            block_dag.transfer_bits(src, dst)
            for src, dst in block_dag.edges()
        )
        plan.metadata["tree_nodes"] = [n.name for n in tree.all_nodes()]
        return plan


def _product_limited(tables: List[List[Tuple[int, _Candidate]]],
                     limit: int = 200000):
    """Cartesian product over per-child DP tables with a safety cap."""
    if not tables:
        yield []
        return
    count = 0

    def recurse(index: int, chosen: List[Tuple[int, _Candidate]]):
        nonlocal count
        if count > limit:
            return
        if index == len(tables):
            count += 1
            yield list(chosen)
            return
        for item in tables[index]:
            chosen.append(item)
            yield from recurse(index + 1, chosen)
            chosen.pop()

    yield from recurse(0, [])
