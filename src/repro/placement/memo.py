"""Cross-epoch memoisation for the DP placer.

The DP search of :class:`~repro.placement.dp.DPPlacer` decomposes into three
kinds of sub-solutions, each cached here across ``place()`` calls:

* **device feasibility** — can this device (plus bypass fallbacks) host this
  block interval?  One :class:`~repro.placement.intra.IntraDeviceAllocator`
  run per *distinct* key; symmetric devices share the answer because the key
  is the device's *content* (type + allocation fingerprint), not its name.
* **interval gains** — the Eq. 1 gain of hosting an interval on a reduced
  node, keyed on the node's content signature.
* **sub-tree tables** — whole ``_client_dp`` / ``_server_dp`` DP tables,
  keyed on a recursive sub-tree signature so symmetric pods solve once and
  every isomorphic sibling reuses the table via ec-id correspondence.

Every key embeds a *context digest* (normalised program fingerprint, block
parameters, objective normalisation constants) and the allocation
fingerprints of every device the sub-solution consulted
(:meth:`~repro.devices.base.Device.allocation_fingerprint`).  Keys are
therefore **content-addressed**: any allocation change on a consulted device
changes its fingerprint and routes the lookup to a fresh key, so stale
entries can never be returned.  Pruning — driven by
:meth:`NetworkTopology.fingerprint_delta
<repro.topology.network.NetworkTopology.fingerprint_delta>` deltas and by
commit/release/remove events — exists to bound memory and drop entries that
can never hit again, not for correctness.

:class:`SharedPlacementMemo` extends the private memo into a *fabric-wide*
store: a thread-safe LRU front backed by the ``memo`` namespace of an
:class:`~repro.core.cache.ArtifactCache` (read-through on miss, write-back
on store), a sequence-numbered delta log so process-pool workers can ship
newly derived entries back to the parent and receive batched delta sync,
per-key single-flight guards so concurrent in-process users (controller
shards) never derive the same sub-tree table twice, and on-disk
persistence with fingerprint validation for warm restarts.  Because every
key is content-addressed, sharing needs no coherence protocol: a missed or
dropped delta costs a re-derivation, never a wrong answer.
"""

from __future__ import annotations

import hashlib
import pickle
import threading
from collections import OrderedDict
from contextlib import contextmanager
from typing import Dict, Hashable, Iterable, List, Optional, Set, Tuple

__all__ = [
    "PlacementMemo",
    "SharedPlacementMemo",
    "MISS",
    "INFEASIBLE",
    "MEMO_NAMESPACE",
    "MEMO_FILE_FORMAT",
    "topology_structure_signature",
]

#: :class:`ArtifactCache` namespace holding the shared memo's backing store.
MEMO_NAMESPACE = "memo"

#: On-disk format version of :meth:`SharedPlacementMemo.save` files; bumped
#: whenever the entry layout changes so a restart never misreads old files.
MEMO_FILE_FORMAT = 1


class _Sentinel:
    """A pickle-stable singleton marker.

    The memo's sentinels are compared by identity (``is MISS``), which bare
    ``object()`` instances do not survive: unpickling creates a *new*
    object, so a sentinel that crossed a process boundary (worker delta
    blobs) or a restart (persisted memo files) would stop comparing equal.
    ``__reduce__`` routes unpickling back through the per-tag registry, so
    identity is preserved across pickling, forks and restarts.
    """

    _registry: Dict[str, "_Sentinel"] = {}

    __slots__ = ("_tag",)

    def __new__(cls, tag: str) -> "_Sentinel":
        existing = cls._registry.get(tag)
        if existing is not None:
            return existing
        instance = super().__new__(cls)
        instance._tag = tag
        cls._registry[tag] = instance
        return instance

    def __reduce__(self):
        return (_Sentinel, (self._tag,))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<memo.{self._tag}>"


#: sentinel returned by lookups when the key is absent (``None`` and floats
#: are valid cached values, so absence needs its own object)
MISS = _Sentinel("MISS")

#: sentinel cached for intervals/devices proven infeasible
INFEASIBLE = _Sentinel("INFEASIBLE")

_Key = Tuple[Hashable, ...]


def topology_structure_signature(topology) -> str:
    """Hash of a topology's *static* shape (names, types, stage counts).

    A persisted memo file is only meaningful against the fabric it was
    derived on; this signature pins that association without freezing the
    *mutable* allocation state (which the per-device fingerprints in the
    file header validate separately).
    """
    payload = sorted(
        (device.name, device.dev_type, device.num_stages)
        for device in topology.devices.values()
    )
    return hashlib.sha256(repr(payload).encode("utf-8")).hexdigest()


class PlacementMemo:
    """Three LRU-bounded stores plus a device-name index for pruning."""

    def __init__(self, max_entries: int = 100000) -> None:
        self.max_entries = max(16, int(max_entries))
        #: store name -> OrderedDict key -> (value, consulted device names)
        self._stores: Dict[str, "OrderedDict[_Key, Tuple[object, Tuple[str, ...]]]"] = {
            "device": OrderedDict(),
            "interval": OrderedDict(),
            "table": OrderedDict(),
        }
        #: device name -> set of (store name, key) that consulted it
        self._by_device: Dict[str, Set[Tuple[str, _Key]]] = {}

    # ------------------------------------------------------------------ #
    # generic store plumbing
    # ------------------------------------------------------------------ #
    def _lookup(self, store: str, key: _Key) -> object:
        entries = self._stores[store]
        entry = entries.get(key)
        if entry is None:
            return MISS
        entries.move_to_end(key)
        return entry[0]

    def _store(self, store: str, key: _Key, value: object,
               devices: Iterable[str]) -> None:
        entries = self._stores[store]
        names = tuple(devices)
        entries[key] = (value, names)
        entries.move_to_end(key)
        for name in names:
            self._by_device.setdefault(name, set()).add((store, key))
        while len(entries) > self.max_entries:
            old_key, (_, old_names) = entries.popitem(last=False)
            for name in old_names:
                refs = self._by_device.get(name)
                if refs is not None:
                    refs.discard((store, old_key))
                    if not refs:
                        del self._by_device[name]

    # ------------------------------------------------------------------ #
    # typed accessors
    # ------------------------------------------------------------------ #
    def lookup_device(self, key: _Key) -> object:
        """Feasibility of one (context, interval, device-content) key."""
        return self._lookup("device", key)

    def store_device(self, key: _Key, feasible: bool,
                     devices: Iterable[str]) -> None:
        self._store("device", key, feasible, devices)

    def lookup_interval(self, key: _Key) -> object:
        """Gain (or :data:`INFEASIBLE`) of one (context, node, interval) key."""
        return self._lookup("interval", key)

    def store_interval(self, key: _Key, value: object,
                       devices: Iterable[str]) -> None:
        self._store("interval", key, value, devices)

    def lookup_table(self, key: _Key) -> object:
        """A stored ``(dfs_ec_ids, dp_table, stamps)`` for a sub-tree signature."""
        return self._lookup("table", key)

    def store_table(self, key: _Key, value: object,
                    devices: Iterable[str]) -> None:
        self._store("table", key, value, devices)

    # ------------------------------------------------------------------ #
    # pruning / introspection
    # ------------------------------------------------------------------ #
    def prune_devices(self, device_names: Iterable[str]) -> int:
        """Drop every entry that consulted any of *device_names*.

        Called with commit/release deltas (and with
        ``NetworkTopology.fingerprint_delta`` output when re-syncing a
        snapshot): those devices' fingerprints changed, so entries keyed on
        the old fingerprints can never hit again.  Returns the number of
        entries dropped.
        """
        removed = 0
        for name in device_names:
            refs = self._by_device.pop(name, None)
            if not refs:
                continue
            for store, key in refs:
                entry = self._stores[store].pop(key, None)
                if entry is None:
                    continue
                removed += 1
                for other in entry[1]:
                    if other == name:
                        continue
                    other_refs = self._by_device.get(other)
                    if other_refs is not None:
                        other_refs.discard((store, key))
                        if not other_refs:
                            del self._by_device[other]
        return removed

    def clear(self) -> int:
        total = len(self)
        for entries in self._stores.values():
            entries.clear()
        self._by_device.clear()
        return total

    def __len__(self) -> int:
        return sum(len(entries) for entries in self._stores.values())

    def sizes(self) -> Dict[str, int]:
        return {store: len(entries) for store, entries in self._stores.items()}

    def devices_indexed(self) -> List[str]:
        return sorted(self._by_device)

    def summary(self) -> Dict[str, object]:
        return {"entries": len(self), "sizes": self.sizes()}


class SharedPlacementMemo(PlacementMemo):
    """A process-shared, persistable placement memo.

    Layered over the private :class:`PlacementMemo`:

    * the inherited LRU stores act as the **in-process front** — hot
      lookups never touch the backing store;
    * a **backing** :class:`~repro.core.cache.ArtifactCache` holds every
      written entry under a content address in the :data:`MEMO_NAMESPACE`
      namespace.  Stores write back, front misses read through, and a
      backing cache *shared between several fronts* (one per controller
      shard) is what lets shard A's pod sub-tree table warm shard B —
      all keys are name-blind and fingerprint-addressed, so reuse across
      shard views is sound by construction;
    * a sequence-numbered **delta log** feeds the worker-pool sync
      protocol: :meth:`export_delta` packages entries derived since a
      watermark into one pickled blob, :meth:`apply_delta` merges a blob
      from another process.  Sync is *lossy-safe* — a dropped blob (idle
      worker, trimmed log) costs a re-derivation, never a wrong answer —
      so the log is bounded rather than durable;
    * :meth:`table_guard` provides per-key **single-flight** for
      concurrent in-process users: the second thread asking for an
      uncached sub-tree table blocks until the first finishes deriving
      it, then hits.  (Process-pool workers have no shared locks; their
      duplicate derivations are collapsed at delta-merge time and show up
      in ``counters.duplicate_entries``.)
    * :meth:`save` / :meth:`restore` persist the store next to the
      artifact cache and bring it back after a controller/service
      restart, validating the file's topology signature and per-device
      allocation fingerprints so only still-live sub-solutions return.

    All public operations are thread-safe (controller shards run in
    threads and share one ``Device`` world, hence potentially one memo).
    """

    def __init__(self, max_entries: int = 100000,
                 backing: Optional[object] = None,
                 max_log_entries: int = 50000) -> None:
        super().__init__(max_entries)
        from repro.core.cache import ArtifactCache  # local: avoids an
        # import cycle (repro.core.__init__ imports the controller, which
        # imports the placer, which imports this module)

        self._lock = threading.RLock()
        self._backing = (backing if backing is not None
                         else ArtifactCache(max_entries=self.max_entries))
        self.max_log_entries = max(16, int(max_log_entries))
        #: delta log: (seq, store, key, value, names), oldest first
        self._log: List[Tuple[int, str, _Key, object, Tuple[str, ...]]] = []
        self._log_seq = 0
        #: per-key single-flight guards: key -> [lock, waiter count]
        self._guards: Dict[_Key, List[object]] = {}
        self._guard_meta = threading.Lock()
        from repro.core.stats import MemoCounters  # local: same cycle guard

        self.counters = MemoCounters()

    # ------------------------------------------------------------------ #
    # backing-store plumbing
    # ------------------------------------------------------------------ #
    @property
    def backing(self):
        """The backing :class:`ArtifactCache` (shareable between fronts)."""
        return self._backing

    @staticmethod
    def _backing_key(store: str, key: _Key) -> str:
        from repro.core.cache import content_key

        return content_key(MEMO_NAMESPACE, store, repr(key))

    def _lookup(self, store: str, key: _Key) -> object:
        with self._lock:
            value = super()._lookup(store, key)
            if value is not MISS:
                self.counters.increment("hits")
                return value
            hit, entry = self._backing.lookup(self._backing_key(store, key))
            if hit:
                # read-through: install into the front without re-logging
                # (the entry already travelled through someone's log)
                _, value, names = entry
                super()._store(store, key, value, names)
                self.counters.increment("shared_hits")
                return value
            self.counters.increment("misses")
            return MISS

    def _store(self, store: str, key: _Key, value: object,
               devices: Iterable[str]) -> None:
        names = tuple(devices)
        with self._lock:
            super()._store(store, key, value, names)
            self._backing.store(self._backing_key(store, key),
                                (key, value, names))
            self._append_log(store, key, value, names)

    def _append_log(self, store: str, key: _Key, value: object,
                    names: Tuple[str, ...]) -> None:
        self._log_seq += 1
        self._log.append((self._log_seq, store, key, value, names))
        # bound the log: entries beyond the cap fall off the front.  A
        # consumer whose watermark predates the trim simply misses them —
        # it re-derives on demand, which content-addressing makes safe.
        if len(self._log) > self.max_log_entries:
            del self._log[: len(self._log) - self.max_log_entries]

    def prune_devices(self, device_names: Iterable[str]) -> int:
        """Drop front entries that consulted any of *device_names*.

        Only the front is pruned eagerly (it has the device index).  The
        backing store keeps superseded entries until its LRU evicts them:
        they are keyed on the old fingerprints, so no lookup can ever hit
        them again — retaining them briefly is a memory trade, not a
        staleness risk.
        """
        with self._lock:
            return super().prune_devices(device_names)

    def clear(self) -> int:
        with self._lock:
            removed = super().clear()
            self._backing.invalidate(MEMO_NAMESPACE)
            self._log.clear()
            return removed

    def __len__(self) -> int:
        with self._lock:
            return super().__len__()

    def sizes(self) -> Dict[str, int]:
        with self._lock:
            return super().sizes()

    def devices_indexed(self) -> List[str]:
        with self._lock:
            return super().devices_indexed()

    # ------------------------------------------------------------------ #
    # single-flight
    # ------------------------------------------------------------------ #
    @contextmanager
    def table_guard(self, key: _Key):
        """Serialise concurrent derivations of one uncached key.

        The caller re-checks the memo under the guard: the second thread
        through blocks while the first derives and stores, then hits on
        the re-check instead of re-deriving.  Per-key locks cannot
        deadlock across keys: a thread only ever waits on a *descendant*
        sub-tree's key while holding an ancestor's, and signature
        containment is a strict partial order (a sub-tree signature
        embeds its descendants' content, so no cycle of containment can
        exist).  Guards are dropped as soon as nobody holds or awaits
        them, so the dict stays bounded by live concurrency.
        """
        with self._guard_meta:
            entry = self._guards.get(key)
            if entry is None:
                entry = [threading.RLock(), 0]
                self._guards[key] = entry
            entry[1] += 1
        entry[0].acquire()
        try:
            yield
        finally:
            entry[0].release()
            with self._guard_meta:
                entry[1] -= 1
                if entry[1] <= 0:
                    self._guards.pop(key, None)

    # ------------------------------------------------------------------ #
    # delta sync (worker pools)
    # ------------------------------------------------------------------ #
    @property
    def delta_seq(self) -> int:
        """Sequence number of the newest logged entry (0 when empty)."""
        with self._lock:
            return self._log_seq

    def export_delta(self, since_seq: int) -> Optional[Tuple[int, bytes]]:
        """``(to_seq, blob)`` of entries logged after *since_seq*, or None.

        The blob is a pickle of ``[(store, key, value, names), ...]``;
        consumers apply it with :meth:`apply_delta` and advance their
        watermark to ``to_seq``.  Entries trimmed from the bounded log are
        silently absent — acceptable because sync is performance-only.
        """
        with self._lock:
            if self._log_seq <= since_seq:
                return None
            entries = [
                (store, key, value, names)
                for seq, store, key, value, names in self._log
                if seq > since_seq
            ]
            blob = pickle.dumps(entries, protocol=pickle.HIGHEST_PROTOCOL)
            self.counters.increment("delta_entries_out", by=len(entries))
            self.counters.increment("delta_bytes_out", by=len(blob))
            return self._log_seq, blob

    def export_snapshot(self) -> Tuple[int, bytes]:
        """``(seq, blob)`` covering every entry currently in the front.

        Used to warm a brand-new consumer (pool-fork initialisation),
        where the bounded delta log may no longer reach back far enough.
        """
        with self._lock:
            entries = [
                (store, key, value, names)
                for store, store_entries in self._stores.items()
                for key, (value, names) in store_entries.items()
            ]
            blob = pickle.dumps(entries, protocol=pickle.HIGHEST_PROTOCOL)
            self.counters.increment("delta_entries_out", by=len(entries))
            self.counters.increment("delta_bytes_out", by=len(blob))
            return self._log_seq, blob

    def apply_delta(self, blob: bytes, record: bool = False
                    ) -> Tuple[int, int]:
        """Merge a delta blob; returns ``(applied, duplicates)``.

        Entries whose key is already present (front or backing) are
        counted as duplicates and skipped — with process-pool workers
        racing on the same cold fabric, duplicates measure exactly the
        work single-flight could not prevent across processes.  With
        ``record=True`` the applied entries are re-logged, so a parent
        merging one worker's delta relays it to the *other* workers
        through the next batched sync.
        """
        entries = pickle.loads(blob)
        applied = duplicates = 0
        with self._lock:
            for store, key, value, names in entries:
                store_entries = self._stores.get(store)
                if store_entries is None:
                    continue
                if key in store_entries or (
                        self._backing_key(store, key) in self._backing):
                    duplicates += 1
                    continue
                PlacementMemo._store(self, store, key, value, names)
                self._backing.store(self._backing_key(store, key),
                                    (key, value, names))
                if record:
                    self._append_log(store, key, value, names)
                applied += 1
            self.counters.increment("delta_entries_in", by=applied)
            self.counters.increment("delta_bytes_in", by=len(blob))
            self.counters.increment("duplicate_entries", by=duplicates)
        return applied, duplicates

    # ------------------------------------------------------------------ #
    # persistence (warm restarts)
    # ------------------------------------------------------------------ #
    def save(self, path: str, topology) -> int:
        """Persist the memo to *path*; returns the number of entries written.

        The file carries a header — format version, the topology's
        structural signature, and the per-device allocation fingerprints
        at save time — that :meth:`restore` validates before trusting any
        entry.  Front and backing entries are merged (the backing may
        hold sub-solutions other fronts derived), and the write is
        atomic (temp file + rename), so a crash mid-save leaves the
        previous file intact.
        """
        import os

        with self._lock:
            merged: Dict[str, Tuple[str, _Key, object, Tuple[str, ...]]] = {}
            for bkey, entry in self._backing.namespace_items(MEMO_NAMESPACE):
                key, value, names = entry
                store = self._store_of_backing_key(bkey, key)
                if store is not None:
                    merged[bkey] = (store, key, value, names)
            for store, store_entries in self._stores.items():
                for key, (value, names) in store_entries.items():
                    merged[self._backing_key(store, key)] = (
                        store, key, value, names
                    )
            payload = {
                "format": MEMO_FILE_FORMAT,
                "topology": topology_structure_signature(topology),
                "fingerprints": topology.device_fingerprints(),
                "entries": list(merged.values()),
            }
        blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        tmp_path = f"{path}.tmp.{os.getpid()}"
        with open(tmp_path, "wb") as handle:
            handle.write(blob)
        os.replace(tmp_path, path)
        self.counters.increment("persisted_entries", by=len(payload["entries"]))
        return len(payload["entries"])

    def _store_of_backing_key(self, bkey: str, key: _Key) -> Optional[str]:
        """Recover which store a backing entry belongs to (key round-trip)."""
        for store in self._stores:
            if self._backing_key(store, key) == bkey:
                return store
        return None

    def restore(self, path: str, topology) -> int:
        """Load a persisted memo; returns the number of entries restored.

        Validation is strict and failure is always *cold solve*, never an
        error: an unreadable/corrupted file, a wrong format version, or a
        file saved against a structurally different topology restores
        nothing.  Otherwise each entry is admitted only if every device it
        consulted still carries the allocation fingerprint recorded at
        save time — the warm-restart analogue of the worker pool's epoch
        validation — so allocation drift between save and restore drops
        exactly the invalidated sub-solutions.
        """
        try:
            with open(path, "rb") as handle:
                payload = pickle.load(handle)
        except Exception:
            self.counters.increment("restore_rejected")
            return 0
        if (not isinstance(payload, dict)
                or payload.get("format") != MEMO_FILE_FORMAT
                or payload.get("topology")
                != topology_structure_signature(topology)):
            self.counters.increment("restore_rejected")
            return 0
        saved_fps = payload.get("fingerprints") or {}
        live_fps = topology.device_fingerprints()
        valid = {
            name for name, fingerprint in saved_fps.items()
            if live_fps.get(name) == fingerprint
        }
        restored = 0
        with self._lock:
            for entry in payload.get("entries", ()):
                try:
                    store, key, value, names = entry
                except (TypeError, ValueError):
                    continue
                if store not in self._stores:
                    continue
                if any(name not in valid for name in names):
                    continue
                PlacementMemo._store(self, store, key, value, names)
                self._backing.store(self._backing_key(store, key),
                                    (key, value, names))
                restored += 1
        self.counters.increment("restored_entries", by=restored)
        return restored

    # ------------------------------------------------------------------ #
    def summary(self) -> Dict[str, object]:
        with self._lock:
            summary: Dict[str, object] = {
                "entries": PlacementMemo.__len__(self),
                "sizes": {store: len(entries)
                          for store, entries in self._stores.items()},
                "backing_entries": len(self._backing),
                "log_entries": len(self._log),
            }
        summary.update(self.counters.summary())
        return summary
