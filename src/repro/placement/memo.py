"""Cross-epoch memoisation for the DP placer.

The DP search of :class:`~repro.placement.dp.DPPlacer` decomposes into three
kinds of sub-solutions, each cached here across ``place()`` calls:

* **device feasibility** — can this device (plus bypass fallbacks) host this
  block interval?  One :class:`~repro.placement.intra.IntraDeviceAllocator`
  run per *distinct* key; symmetric devices share the answer because the key
  is the device's *content* (type + allocation fingerprint), not its name.
* **interval gains** — the Eq. 1 gain of hosting an interval on a reduced
  node, keyed on the node's content signature.
* **sub-tree tables** — whole ``_client_dp`` / ``_server_dp`` DP tables,
  keyed on a recursive sub-tree signature so symmetric pods solve once and
  every isomorphic sibling reuses the table via ec-id correspondence.

Every key embeds a *context digest* (normalised program fingerprint, block
parameters, objective normalisation constants) and the allocation
fingerprints of every device the sub-solution consulted
(:meth:`~repro.devices.base.Device.allocation_fingerprint`).  Keys are
therefore **content-addressed**: any allocation change on a consulted device
changes its fingerprint and routes the lookup to a fresh key, so stale
entries can never be returned.  Pruning — driven by
:meth:`NetworkTopology.fingerprint_delta
<repro.topology.network.NetworkTopology.fingerprint_delta>` deltas and by
commit/release/remove events — exists to bound memory and drop entries that
can never hit again, not for correctness.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Hashable, Iterable, List, Set, Tuple

__all__ = ["PlacementMemo", "MISS", "INFEASIBLE"]

#: sentinel returned by lookups when the key is absent (``None`` and floats
#: are valid cached values, so absence needs its own object)
MISS = object()

#: sentinel cached for intervals/devices proven infeasible
INFEASIBLE = object()

_Key = Tuple[Hashable, ...]


class PlacementMemo:
    """Three LRU-bounded stores plus a device-name index for pruning."""

    def __init__(self, max_entries: int = 100000) -> None:
        self.max_entries = max(16, int(max_entries))
        #: store name -> OrderedDict key -> (value, consulted device names)
        self._stores: Dict[str, "OrderedDict[_Key, Tuple[object, Tuple[str, ...]]]"] = {
            "device": OrderedDict(),
            "interval": OrderedDict(),
            "table": OrderedDict(),
        }
        #: device name -> set of (store name, key) that consulted it
        self._by_device: Dict[str, Set[Tuple[str, _Key]]] = {}

    # ------------------------------------------------------------------ #
    # generic store plumbing
    # ------------------------------------------------------------------ #
    def _lookup(self, store: str, key: _Key) -> object:
        entries = self._stores[store]
        entry = entries.get(key)
        if entry is None:
            return MISS
        entries.move_to_end(key)
        return entry[0]

    def _store(self, store: str, key: _Key, value: object,
               devices: Iterable[str]) -> None:
        entries = self._stores[store]
        names = tuple(devices)
        entries[key] = (value, names)
        entries.move_to_end(key)
        for name in names:
            self._by_device.setdefault(name, set()).add((store, key))
        while len(entries) > self.max_entries:
            old_key, (_, old_names) = entries.popitem(last=False)
            for name in old_names:
                refs = self._by_device.get(name)
                if refs is not None:
                    refs.discard((store, old_key))
                    if not refs:
                        del self._by_device[name]

    # ------------------------------------------------------------------ #
    # typed accessors
    # ------------------------------------------------------------------ #
    def lookup_device(self, key: _Key) -> object:
        """Feasibility of one (context, interval, device-content) key."""
        return self._lookup("device", key)

    def store_device(self, key: _Key, feasible: bool,
                     devices: Iterable[str]) -> None:
        self._store("device", key, feasible, devices)

    def lookup_interval(self, key: _Key) -> object:
        """Gain (or :data:`INFEASIBLE`) of one (context, node, interval) key."""
        return self._lookup("interval", key)

    def store_interval(self, key: _Key, value: object,
                       devices: Iterable[str]) -> None:
        self._store("interval", key, value, devices)

    def lookup_table(self, key: _Key) -> object:
        """A stored ``(dfs_ec_ids, dp_table)`` pair for a sub-tree signature."""
        return self._lookup("table", key)

    def store_table(self, key: _Key, value: object,
                    devices: Iterable[str]) -> None:
        self._store("table", key, value, devices)

    # ------------------------------------------------------------------ #
    # pruning / introspection
    # ------------------------------------------------------------------ #
    def prune_devices(self, device_names: Iterable[str]) -> int:
        """Drop every entry that consulted any of *device_names*.

        Called with commit/release deltas (and with
        ``NetworkTopology.fingerprint_delta`` output when re-syncing a
        snapshot): those devices' fingerprints changed, so entries keyed on
        the old fingerprints can never hit again.  Returns the number of
        entries dropped.
        """
        removed = 0
        for name in device_names:
            refs = self._by_device.pop(name, None)
            if not refs:
                continue
            for store, key in refs:
                entry = self._stores[store].pop(key, None)
                if entry is None:
                    continue
                removed += 1
                for other in entry[1]:
                    if other == name:
                        continue
                    other_refs = self._by_device.get(other)
                    if other_refs is not None:
                        other_refs.discard((store, key))
                        if not other_refs:
                            del self._by_device[other]
        return removed

    def clear(self) -> int:
        total = len(self)
        for entries in self._stores.values():
            entries.clear()
        self._by_device.clear()
        return total

    def __len__(self) -> int:
        return sum(len(entries) for entries in self._stores.values())

    def sizes(self) -> Dict[str, int]:
        return {store: len(entries) for store, entries in self._stores.items()}

    def devices_indexed(self) -> List[str]:
        return sorted(self._by_device)
