"""Device abstraction shared by all chip models.

The placement algorithms treat a device as (i) a capability-class filter and
(ii) a vector of resource capacities, organised either per pipeline stage
(pipeline devices) or as a single pool (run-to-completion devices).  This
module defines that abstraction plus the bookkeeping for allocating and
releasing resources as programs are deployed and removed.
"""

from __future__ import annotations

import enum
import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Sequence

from repro.exceptions import ResourceExhaustedError
from repro.ir.instructions import InstrClass, Instruction, resource_footprint
from repro.ir.program import IRProgram


class Architecture(str, enum.Enum):
    """High-level device architecture (paper Appendix D)."""

    PIPELINE = "pipeline"
    RTC = "rtc"            # run to completion (multi-core)
    HYBRID = "hybrid"      # cores organisable as a pipeline (NFP, FPGA)


#: Resource dimension names used across the library.
RESOURCE_KEYS = (
    "sram_kb",      # SRAM for tables / registers
    "tcam_kb",      # TCAM for ternary matching
    "alu",          # stateless ALUs
    "salu",         # stateful ALUs
    "hash",         # hash / checksum units
    "gateway",      # predicate evaluation resources
    "dsp",          # complex arithmetic (multiplication, floating point)
    "instructions", # micro-instruction slots (RTC devices)
)


@dataclass
class StageResources:
    """Resource capacities of a single pipeline stage (or RTC core pool)."""

    capacities: Dict[str, float] = field(default_factory=dict)
    used: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for key in self.capacities:
            self.used.setdefault(key, 0.0)

    def available(self, key: str) -> float:
        return self.capacities.get(key, 0.0) - self.used.get(key, 0.0)

    def can_fit(self, demand: Dict[str, float]) -> bool:
        return all(
            self.available(key) >= amount
            for key, amount in demand.items()
            if amount > 0
        )

    def allocate(self, demand: Dict[str, float]) -> None:
        if not self.can_fit(demand):
            raise ResourceExhaustedError(
                f"stage cannot fit demand {demand}; available="
                f"{ {k: self.available(k) for k in demand} }"
            )
        for key, amount in demand.items():
            if amount > 0:
                self.used[key] = self.used.get(key, 0.0) + amount

    def release(self, demand: Dict[str, float]) -> None:
        for key, amount in demand.items():
            if amount > 0:
                self.used[key] = max(0.0, self.used.get(key, 0.0) - amount)

    def utilisation(self) -> float:
        ratios = [
            self.used.get(key, 0.0) / cap
            for key, cap in self.capacities.items()
            if cap > 0
        ]
        return max(ratios) if ratios else 0.0

    def copy(self) -> "StageResources":
        return StageResources(dict(self.capacities), dict(self.used))


@dataclass
class DeviceResources:
    """All resources of a device: one :class:`StageResources` per stage."""

    stages: List[StageResources] = field(default_factory=list)

    def total_capacity(self, key: str) -> float:
        return sum(stage.capacities.get(key, 0.0) for stage in self.stages)

    def copy(self) -> "DeviceResources":
        return DeviceResources([stage.copy() for stage in self.stages])


class Device:
    """A programmable network device.

    Parameters
    ----------
    name:
        Unique device name in the topology (e.g. ``"ToR0"``).
    dev_type:
        Short type string (``"tofino"``, ``"tofino2"``, ``"td4"``, ``"nfp"``,
        ``"fpga"``) used by equivalence-class grouping.
    architecture:
        Pipeline, RTC or hybrid.
    supported_classes:
        Capability classes (paper Table 9) this device can execute.
    stages:
        Per-stage resources.  RTC devices use a single pseudo-stage.
    bandwidth_gbps:
        Line rate of the device, used by the emulator and Eq. 49.
    processing_latency_ns:
        Fixed per-packet processing latency contribution of the device.
    """

    def __init__(
        self,
        name: str,
        dev_type: str,
        architecture: Architecture,
        supported_classes: Iterable[InstrClass],
        stages: Sequence[StageResources],
        bandwidth_gbps: float = 100.0,
        processing_latency_ns: float = 400.0,
    ) -> None:
        self.name = name
        self.dev_type = dev_type
        self.architecture = architecture
        self.supported_classes: FrozenSet[InstrClass] = frozenset(supported_classes) | {
            InstrClass.META
        }
        self.stages: List[StageResources] = list(stages)
        self.bandwidth_gbps = bandwidth_gbps
        self.processing_latency_ns = processing_latency_ns
        self.deployed_programs: Dict[str, List[int]] = {}
        #: Operational status: ``"up"`` (serving), ``"drain"`` (administratively
        #: excluded from forwarding and placement, state still readable) or
        #: ``"down"`` (failed; forwarding, placement and state all lost).
        self.status: str = "up"
        #: Counter bumped by the topology when the device's *surroundings*
        #: change (an adjacent link fails, flaps or is removed).  It is part
        #: of the allocation fingerprint, so plans placed before the change
        #: stop validating even though the device's own allocations are
        #: untouched.
        self.topology_version: int = 0
        #: Monotonic counter bumped on every allocation change.  The topology
        #: sums these into its allocation epoch, so "did anything change?"
        #: is an integer comparison rather than a full re-hash.
        self.alloc_version: int = 0
        self._fingerprint_cache: tuple = (-1, "")

    # ------------------------------------------------------------------ #
    # capability checks
    # ------------------------------------------------------------------ #
    @property
    def num_stages(self) -> int:
        return len(self.stages)

    def supports_class(self, cls: InstrClass) -> bool:
        return cls in self.supported_classes

    def supports_instruction(self, instr: Instruction) -> bool:
        return self.supports_class(instr.instr_class)

    def supports_program(self, program: IRProgram) -> bool:
        return all(self.supports_instruction(instr) for instr in program)

    def unsupported_classes(self, classes: Iterable[InstrClass]) -> FrozenSet[InstrClass]:
        return frozenset(classes) - self.supported_classes

    # ------------------------------------------------------------------ #
    # resource accounting
    # ------------------------------------------------------------------ #
    def instruction_demand(self, instr: Instruction) -> Dict[str, float]:
        """Translate an instruction's abstract footprint into device resources."""
        raw = resource_footprint(instr)
        return {
            "alu": float(raw["alu"]),
            "salu": float(raw["salu"]),
            "hash": float(raw["hash"]),
            "gateway": float(raw["gateway"]),
            "dsp": float(raw["dsp"]),
            "tcam_kb": raw["tcam_bits"] / 8192.0,
            "sram_kb": raw["sram_bits"] / 8192.0,
            "instructions": 1.0,
        }

    def state_demand(self, program: IRProgram, state_names: Iterable[str]) -> Dict[str, float]:
        """Memory demand of the persistent states named in *state_names*."""
        sram_bits = 0
        tcam_bits = 0
        for name in state_names:
            state = program.get_state(name)
            if state.kind.value in ("ternary_table",):
                tcam_bits += state.total_bits
            else:
                sram_bits += state.total_bits
        return {"sram_kb": sram_bits / 8192.0, "tcam_kb": tcam_bits / 8192.0}

    def can_fit_instructions(self, instructions: Sequence[Instruction]) -> bool:
        """Quick feasibility check: capability classes + aggregate resources."""
        for instr in instructions:
            if not self.supports_instruction(instr):
                return False
        total: Dict[str, float] = {}
        for instr in instructions:
            for key, value in self.instruction_demand(instr).items():
                total[key] = total.get(key, 0.0) + value
        available: Dict[str, float] = {}
        for stage in self.stages:
            for key in total:
                available[key] = available.get(key, 0.0) + stage.available(key)
        return all(available.get(key, 0.0) >= value for key, value in total.items())

    def remaining_ratio(self) -> float:
        """Fraction of total resources still free (used by adaptive weights)."""
        total = 0.0
        free = 0.0
        for stage in self.stages:
            for key, cap in stage.capacities.items():
                if cap <= 0:
                    continue
                total += 1.0
                free += max(0.0, stage.available(key)) / cap
        return free / total if total else 1.0

    def utilisation(self) -> float:
        return 1.0 - self.remaining_ratio()

    def allocate_stage(self, stage_index: int, demand: Dict[str, float]) -> None:
        self.stages[stage_index].allocate(demand)
        self.alloc_version += 1

    def release_stage(self, stage_index: int, demand: Dict[str, float]) -> None:
        self.stages[stage_index].release(demand)
        self.alloc_version += 1

    def allocation_fingerprint(self) -> str:
        """Stable hash of this device's current resource allocations.

        The fingerprint covers everything a placement search reads from the
        device — per-stage usage and the set of deployed programs — so it
        changes exactly when a commit or release could alter a placement
        decision.  Speculative plans record it per consulted device and the
        commit step revalidates it (optimistic concurrency control).  The
        hash is memoised per :attr:`alloc_version`, so repeated fingerprint
        sweeps between commits cost one integer comparison per device.
        """
        version, cached = self._fingerprint_cache
        if version == self.alloc_version:
            return cached
        # the placement search is name-blind — it reads resource availability
        # and occupancy structure, never tenant names — so the fingerprint
        # normalises names away: a state reached by *equivalent* programs
        # under different tenant names hashes identically, which is what lets
        # written-back plans hit again after a remove/re-submit cycle
        payload = [
            sorted(sorted(blocks) for blocks in self.deployed_programs.values()),
            [sorted(stage.used.items()) for stage in self.stages],
            self.status,
            self.topology_version,
        ]
        rendered = json.dumps(payload, sort_keys=True, separators=(",", ":"),
                              default=str)
        fingerprint = hashlib.sha256(rendered.encode("utf-8")).hexdigest()
        self._fingerprint_cache = (self.alloc_version, fingerprint)
        return fingerprint

    def allocation_state(self) -> Dict[str, object]:
        """Picklable snapshot of the mutable allocation state.

        This is the payload of the persistent worker pool's re-sync protocol:
        instead of re-forking workers per batch, the parent ships the
        allocation state of every device whose fingerprint drifted from the
        worker snapshot and the workers apply it with
        :meth:`set_allocation_state` (absolute state, so application is
        idempotent).
        """
        return {
            "used": [dict(stage.used) for stage in self.stages],
            "deployed_programs": {
                name: list(blocks)
                for name, blocks in self.deployed_programs.items()
            },
            "status": self.status,
            "topology_version": self.topology_version,
        }

    def set_allocation_state(self, state: Dict[str, object]) -> None:
        """Overwrite the allocation state with a parent-process snapshot."""
        for stage, used in zip(self.stages, state["used"]):
            stage.used = {key: 0.0 for key in stage.capacities}
            stage.used.update(used)
        self.deployed_programs = {
            name: list(blocks)
            for name, blocks in state["deployed_programs"].items()
        }
        self.status = state.get("status", "up")
        self.topology_version = int(state.get("topology_version", 0))
        self.alloc_version += 1

    # ------------------------------------------------------------------ #
    # operational status
    # ------------------------------------------------------------------ #
    def is_available(self) -> bool:
        """True when the device may forward traffic and host placements."""
        return self.status == "up"

    def set_status(self, status: str) -> bool:
        """Change the operational status; returns True if it changed.

        A status flip bumps :attr:`alloc_version` (it is part of the
        fingerprint payload), so plans placed against the old status stop
        validating and cached placements keyed on the old topology
        fingerprint can no longer hit.
        """
        if status not in ("up", "drain", "down"):
            raise ValueError(f"unknown device status {status!r}")
        if status == self.status:
            return False
        self.status = status
        self.alloc_version += 1
        return True

    def bump_topology_version(self) -> None:
        """Record an adjacent structural change (link failure/removal)."""
        self.topology_version += 1
        self.alloc_version += 1

    def snapshot(self) -> List[StageResources]:
        """Copy of per-stage resource usage, for rollback during search."""
        return [stage.copy() for stage in self.stages]

    def restore(self, snapshot: List[StageResources]) -> None:
        self.stages = [stage.copy() for stage in snapshot]
        self.alloc_version += 1

    def reset(self) -> None:
        """Release every allocation on this device."""
        for stage in self.stages:
            stage.used = {key: 0.0 for key in stage.capacities}
        self.deployed_programs.clear()
        self.alloc_version += 1

    # ------------------------------------------------------------------ #
    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"{type(self).__name__}(name={self.name!r}, stages={self.num_stages}, "
            f"bw={self.bandwidth_gbps}G)"
        )


class PipelineDevice(Device):
    """A fixed-stage match-action pipeline device (Tofino, Trident4)."""

    def __init__(self, *args, **kwargs) -> None:
        kwargs.setdefault("architecture", Architecture.PIPELINE)
        super().__init__(*args, **kwargs)


class RTCDevice(Device):
    """A run-to-completion multi-core device (NFP smartNIC cores)."""

    def __init__(self, *args, **kwargs) -> None:
        kwargs.setdefault("architecture", Architecture.RTC)
        super().__init__(*args, **kwargs)


def uniform_stages(num_stages: int, per_stage: Dict[str, float]) -> List[StageResources]:
    """Build *num_stages* identical :class:`StageResources`."""
    return [StageResources(dict(per_stage)) for _ in range(num_stages)]
