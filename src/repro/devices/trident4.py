"""Broadcom Trident4 (TD4) switch ASIC model (paper Appendix E.2).

TD4 is a pipeline switch programmed in NPL.  Its pipeline stages have
*unbalanced* resources — some stages carry TCAM tiles but no exact-match
tiles and vice versa — which makes allocation harder than on Tofino.  TD4
supports mirroring/multicast special functions and simple stateful flex-state
operations, but (like Tofino) no integer multiply/divide, no floating point,
no stateful match tables and no crypto.
"""

from __future__ import annotations

from typing import List

from repro.devices.base import Architecture, PipelineDevice, StageResources
from repro.ir.instructions import InstrClass

TD4_CLASSES = frozenset(
    {
        InstrClass.BIN,
        InstrClass.BSO,
        InstrClass.BEM,
        InstrClass.BNEM,
        InstrClass.BDM,
        InstrClass.BBPF,
        InstrClass.BAPF,
        InstrClass.BAF,
    }
)


def _td4_stages(num_stages: int) -> List[StageResources]:
    """Build the unbalanced TD4 stage list.

    Even stages carry exact-match tiles (SRAM heavy) while odd stages carry
    ternary tiles (TCAM heavy); flex-state components (stateful operations)
    are only available in a third of the stages, mirroring the paper's note
    that TD4's resources are unevenly distributed.
    """
    stages: List[StageResources] = []
    for index in range(num_stages):
        sram_heavy = index % 2 == 0
        has_flex_state = index % 3 == 0
        stages.append(
            StageResources(
                {
                    "sram_kb": 1536.0 if sram_heavy else 256.0,
                    "tcam_kb": 16.0 if sram_heavy else 96.0,
                    "alu": 32.0,
                    "salu": 4.0 if has_flex_state else 0.0,
                    "hash": 4.0,
                    "gateway": 12.0,
                    "dsp": 0.0,
                    "instructions": 1e9,
                }
            )
        )
    return stages


class Trident4Device(PipelineDevice):
    """A Broadcom Trident4 programmable switch with unbalanced stages."""

    DEFAULT_STAGES = 16

    def __init__(self, name: str, num_stages: int = DEFAULT_STAGES,
                 bandwidth_gbps: float = 100.0) -> None:
        super().__init__(
            name=name,
            dev_type="td4",
            architecture=Architecture.PIPELINE,
            supported_classes=TD4_CLASSES,
            stages=_td4_stages(num_stages),
            bandwidth_gbps=bandwidth_gbps,
            processing_latency_ns=450.0,
        )
