"""Heterogeneous programmable device models (paper §2.1, Appendix D & E).

Every device exposes the same interface to the placement engine:

* a set of supported instruction capability classes (paper Table 9),
* an architecture (pipeline, run-to-completion, or hybrid),
* per-stage (or per-device) resource capacities, and
* a :meth:`~repro.devices.base.Device.fits` check used by the DP and SMT
  placement algorithms.

Concrete models are provided for Intel Tofino / Tofino2 ASICs, Broadcom
Trident4, Netronome NFP smartNICs and Xilinx FPGA cards; the registry maps
short type names (``"tofino"``, ``"fpga"``, ...) to factories so topologies
can be described with plain strings.
"""

from repro.devices.base import (
    Architecture,
    Device,
    DeviceResources,
    PipelineDevice,
    RTCDevice,
    StageResources,
)
from repro.devices.tofino import TofinoDevice, Tofino2Device
from repro.devices.trident4 import Trident4Device
from repro.devices.netronome import NetronomeNFPDevice
from repro.devices.fpga import XilinxFPGADevice
from repro.devices.registry import DEVICE_FACTORIES, make_device

__all__ = [
    "Architecture",
    "Device",
    "DeviceResources",
    "PipelineDevice",
    "RTCDevice",
    "StageResources",
    "TofinoDevice",
    "Tofino2Device",
    "Trident4Device",
    "NetronomeNFPDevice",
    "XilinxFPGADevice",
    "DEVICE_FACTORIES",
    "make_device",
]
