"""Xilinx FPGA smartNIC / accelerator card model (paper Appendix E.4).

The FPGA is modelled as a hybrid device: a configurable pipeline with large
BRAM/URAM memory, DSP slices for complex arithmetic (including floating
point), LUT/FF fabric, and support for every capability class including
crypto.  It is the only device class that can run floating-point MLAgg
aggregation or large stateful caches (hence the "bypass FPGA" attached to
aggregation switches in the paper's Fig. 11 topology).
"""

from __future__ import annotations

from typing import Dict

from repro.devices.base import Architecture, Device, uniform_stages
from repro.ir.instructions import InstrClass

FPGA_CLASSES = frozenset(
    {
        InstrClass.BIN,
        InstrClass.BIC,
        InstrClass.BCA,
        InstrClass.BSO,
        InstrClass.BEM,
        InstrClass.BSEM,
        InstrClass.BNEM,
        InstrClass.BSNEM,
        InstrClass.BDM,
        InstrClass.BBPF,
        InstrClass.BAF,
        InstrClass.BCF,
    }
)

#: Per-virtual-stage resources derived from an Alveo U280-class card:
#: 2016 BRAM36 blocks (~9 MB), 960 URAM blocks (~34 MB), 9024 DSP slices,
#: 1.3 M LUTs — divided over the virtual pipeline stages.
def _fpga_stage_resources(num_stages: int) -> Dict[str, float]:
    total_bram_kb = 2016 * 4.5
    total_uram_kb = 960 * 36.0
    total_dsp = 9024.0
    total_lut = 1_300_000.0
    return {
        "sram_kb": (total_bram_kb + total_uram_kb) / num_stages,
        "tcam_kb": 512.0 / num_stages,          # CAM built from LUTRAM
        "alu": total_lut / 2000.0 / num_stages,  # LUT budget per simple op
        "salu": 64.0,
        "hash": 16.0,
        "gateway": 64.0,
        "dsp": total_dsp / num_stages,
        "instructions": 1e9,
    }


class XilinxFPGADevice(Device):
    """A Xilinx Alveo-class FPGA accelerator card or FPGA smartNIC."""

    DEFAULT_STAGES = 32

    def __init__(self, name: str, num_stages: int = DEFAULT_STAGES,
                 bandwidth_gbps: float = 100.0, as_nic: bool = False) -> None:
        super().__init__(
            name=name,
            dev_type="fpga_nic" if as_nic else "fpga",
            architecture=Architecture.HYBRID,
            supported_classes=FPGA_CLASSES,
            stages=uniform_stages(num_stages, _fpga_stage_resources(num_stages)),
            bandwidth_gbps=bandwidth_gbps,
            processing_latency_ns=2000.0,
        )
        self.as_nic = as_nic
