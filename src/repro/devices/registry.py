"""Factory registry mapping device-type strings to device constructors.

Topology builders describe devices with short strings (``"tofino"``,
``"td4"``, ``"nfp"``, ``"fpga"``, ``"fpga_nic"``, ``"tofino2"``); this module
turns those strings into configured :class:`~repro.devices.base.Device`
instances.
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.devices.base import Device
from repro.devices.fpga import XilinxFPGADevice
from repro.devices.netronome import NetronomeNFPDevice
from repro.devices.tofino import Tofino2Device, TofinoDevice
from repro.devices.trident4 import Trident4Device
from repro.exceptions import TopologyError

DEVICE_FACTORIES: Dict[str, Callable[[str], Device]] = {
    "tofino": lambda name, **kw: TofinoDevice(name, **kw),
    "tofino2": lambda name, **kw: Tofino2Device(name, **kw),
    "td4": lambda name, **kw: Trident4Device(name, **kw),
    "trident4": lambda name, **kw: Trident4Device(name, **kw),
    "nfp": lambda name, **kw: NetronomeNFPDevice(name, **kw),
    "smartnic": lambda name, **kw: NetronomeNFPDevice(name, **kw),
    "fpga": lambda name, **kw: XilinxFPGADevice(name, **kw),
    "fpga_nic": lambda name, **kw: XilinxFPGADevice(name, as_nic=True, **kw),
}


def make_device(dev_type: str, name: str, **kwargs) -> Device:
    """Instantiate a device of *dev_type* named *name*.

    Raises :class:`~repro.exceptions.TopologyError` for unknown types so a
    topology description typo fails fast.
    """
    try:
        factory = DEVICE_FACTORIES[dev_type.lower()]
    except KeyError as exc:
        raise TopologyError(
            f"unknown device type {dev_type!r}; known types: "
            f"{sorted(DEVICE_FACTORIES)}"
        ) from exc
    return factory(name, **kwargs)
