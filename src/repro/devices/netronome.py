"""Netronome Agilio NFP smartNIC model (paper Appendix E.3).

The NFP is a run-to-completion device: ~a hundred flow-processing cores (FPCs)
arranged in islands with a hierarchical memory (GPR / LM / CLS / CTM / IM /
EM).  It supports stateful exact and ternary match tables and integer
multiply/divide, but no floating point.  Its per-core micro-instruction budget
bounds how much program it can hold, and its per-packet latency is much higher
than a switch ASIC's — which is why the paper pairs it with switches rather
than replacing them.
"""

from __future__ import annotations

from typing import List

from repro.devices.base import Architecture, RTCDevice, StageResources
from repro.ir.instructions import InstrClass

NFP_CLASSES = frozenset(
    {
        InstrClass.BIN,
        InstrClass.BIC,
        InstrClass.BSO,
        InstrClass.BEM,
        InstrClass.BSEM,
        InstrClass.BNEM,
        InstrClass.BSNEM,
        InstrClass.BDM,
        InstrClass.BBPF,
        InstrClass.BAF,
        InstrClass.BCF,
    }
)


def _nfp_core_pool(num_islands: int, cores_per_island: int) -> List[StageResources]:
    """Model the NFP as one pseudo-stage per island.

    An island pools its cores' instruction slots and its shared CLS/CTM
    memory; IM/EM (the large shared memories) are folded into the last
    island's SRAM budget so big tables can still be hosted, at the cost of
    latency (modelled via ``processing_latency_ns``).
    """
    stages: List[StageResources] = []
    for index in range(num_islands):
        sram_kb = 256.0 + 4096.0  # CLS + CTM share
        if index == num_islands - 1:
            sram_kb += 8 * 1024.0 + 2 * 1024 * 1024.0 / 64  # IM + a slice of EM
        stages.append(
            StageResources(
                {
                    "sram_kb": sram_kb,
                    "tcam_kb": 64.0,
                    "alu": cores_per_island * 8.0,
                    "salu": cores_per_island * 2.0,
                    "hash": cores_per_island * 1.0,
                    "gateway": cores_per_island * 8.0,
                    "dsp": cores_per_island * 2.0,
                    "instructions": cores_per_island * 8192.0,
                }
            )
        )
    return stages


class NetronomeNFPDevice(RTCDevice):
    """A Netronome Agilio LX NFP smartNIC (multi-core, run-to-completion)."""

    DEFAULT_ISLANDS = 6
    DEFAULT_CORES_PER_ISLAND = 12

    def __init__(self, name: str, num_islands: int = DEFAULT_ISLANDS,
                 cores_per_island: int = DEFAULT_CORES_PER_ISLAND,
                 bandwidth_gbps: float = 40.0) -> None:
        super().__init__(
            name=name,
            dev_type="nfp",
            architecture=Architecture.RTC,
            supported_classes=NFP_CLASSES,
            stages=_nfp_core_pool(num_islands, cores_per_island),
            bandwidth_gbps=bandwidth_gbps,
            processing_latency_ns=4000.0,
        )
        self.num_islands = num_islands
        self.cores_per_island = cores_per_island
