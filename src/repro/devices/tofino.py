"""Intel Tofino and Tofino2 switch ASIC models (paper Appendix E.1).

Tofino follows the RMT architecture: a fixed number of match-action stages,
each with a fixed share of SRAM, TCAM, stateful ALUs, hash units and gateway
resources.  Tofino cannot execute integer multiplication/division, floating
point arithmetic, stateful exact/ternary match tables (beyond registers) or
crypto (paper Eq. 9), which is what forces the MLAgg sparse-detection part
onto smartNICs/FPGAs in the paper's motivating example.

The absolute resource numbers below are public approximations; placement
behaviour depends on their relative sizes, which are preserved.
"""

from __future__ import annotations

from typing import Dict

from repro.devices.base import Architecture, PipelineDevice, uniform_stages
from repro.ir.instructions import InstrClass

#: Capability classes Tofino supports (Appendix E.1 compatibility constraint).
TOFINO_CLASSES = frozenset(
    {
        InstrClass.BIN,
        InstrClass.BSO,
        InstrClass.BEM,
        InstrClass.BNEM,
        InstrClass.BBPF,
        InstrClass.BAPF,
        InstrClass.BAF,
    }
)

#: Per-stage resources of a Tofino-1 pipeline (approximate public numbers).
TOFINO_STAGE_RESOURCES: Dict[str, float] = {
    "sram_kb": 80 * 16.0,     # 80 SRAM blocks x 16 KB
    "tcam_kb": 24 * 2.75,     # 24 TCAM blocks x ~2.75 KB
    "alu": 48.0,
    "salu": 4.0,
    "hash": 6.0,
    "gateway": 16.0,
    "dsp": 0.0,
    "instructions": 1e9,      # pipeline devices are not instruction-count bound
}

#: Tofino2 doubles stage count and enlarges per-stage memory.
TOFINO2_STAGE_RESOURCES: Dict[str, float] = {
    "sram_kb": 100 * 16.0,
    "tcam_kb": 32 * 2.75,
    "alu": 64.0,
    "salu": 6.0,
    "hash": 8.0,
    "gateway": 20.0,
    "dsp": 0.0,
    "instructions": 1e9,
}


class TofinoDevice(PipelineDevice):
    """A 12-stage (per direction) Tofino-1 programmable switch ASIC."""

    DEFAULT_STAGES = 12

    def __init__(self, name: str, num_stages: int = DEFAULT_STAGES,
                 bandwidth_gbps: float = 100.0) -> None:
        super().__init__(
            name=name,
            dev_type="tofino",
            architecture=Architecture.PIPELINE,
            supported_classes=TOFINO_CLASSES,
            stages=uniform_stages(num_stages, TOFINO_STAGE_RESOURCES),
            bandwidth_gbps=bandwidth_gbps,
            processing_latency_ns=400.0,
        )


class Tofino2Device(PipelineDevice):
    """A 20-stage Tofino-2 programmable switch ASIC."""

    DEFAULT_STAGES = 20

    def __init__(self, name: str, num_stages: int = DEFAULT_STAGES,
                 bandwidth_gbps: float = 400.0) -> None:
        super().__init__(
            name=name,
            dev_type="tofino2",
            architecture=Architecture.PIPELINE,
            supported_classes=TOFINO_CLASSES,
            stages=uniform_stages(num_stages, TOFINO2_STAGE_RESOURCES),
            bandwidth_gbps=bandwidth_gbps,
            processing_latency_ns=350.0,
        )
