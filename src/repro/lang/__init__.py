"""The ClickINC user-facing language (paper §4.1).

Users write INC programs in a Python-style syntax with INC-specific objects
(``Array``, ``Table``, ``Hash``, ``Sketch``, ``Seq``, ``Crypto``) and
primitives (``get``, ``write``, ``clear``, ``count``, ``del``, ``drop``,
``fwd``/``forward``, ``copy``).  This package provides:

* :mod:`repro.lang.objects` — declarations of the INC object types.
* :mod:`repro.lang.ast_nodes` — the ClickINC abstract syntax tree.
* :mod:`repro.lang.parser` — a parser from Python-style source to that AST,
  built on the CPython :mod:`ast` module, which rejects anything outside the
  ClickINC grammar (paper Fig. 5).
* :mod:`repro.lang.profile` — application configuration profiles (Fig. 6).
* :mod:`repro.lang.templates` — the KVS, MLAgg and DQAcc templates
  (Appendix A.1) plus the sparse-gradient extension of Fig. 7.
"""

from repro.lang.ast_nodes import (
    Assign,
    AugAssign,
    BinOp,
    Call,
    Compare,
    Constant,
    FieldRef,
    ForLoop,
    IfElse,
    IndexRef,
    Module,
    Name,
    ObjectDecl,
    Statement,
    UnaryOp,
)
from repro.lang.objects import (
    ArraySpec,
    CryptoSpec,
    HashSpec,
    ObjectKind,
    SeqSpec,
    SketchSpec,
    TableSpec,
)
from repro.lang.parser import parse_program
from repro.lang.profile import Profile, TrafficSpec

__all__ = [
    "Assign",
    "AugAssign",
    "BinOp",
    "Call",
    "Compare",
    "Constant",
    "FieldRef",
    "ForLoop",
    "IfElse",
    "IndexRef",
    "Module",
    "Name",
    "ObjectDecl",
    "Statement",
    "UnaryOp",
    "ArraySpec",
    "CryptoSpec",
    "HashSpec",
    "ObjectKind",
    "SeqSpec",
    "SketchSpec",
    "TableSpec",
    "parse_program",
    "Profile",
    "TrafficSpec",
]
