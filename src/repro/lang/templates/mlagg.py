"""ML gradient-aggregation (MLAgg) template and the sparse-gradient extension.

The switch-side structure (paper Appendix A.1, Fig. 16) keeps an aggregator
array indexed by a hash of the job sequence number, a worker bitmap, a
validity flag array, and a stored-sequence array.  Workers send gradient
packets; the switch accumulates each worker's contribution once, returns the
aggregated result when all workers have reported, and mirrors overflowing
values back to the end hosts for software aggregation.

:func:`sparse_mlagg_source` reproduces the user program of paper Fig. 7: the
user instantiates the MLAgg template and prepends sparse-block detection so
all-zero blocks are dropped before aggregation.
"""

from __future__ import annotations

from repro.lang.profile import Profile
from repro.lang.templates.base import Template, TemplateOutput, TemplateRegistry

_MLAGG_SOURCE = """\
from Funclib import *
agg_seq_t = Array(row=1, size=NUM_AGG, w=32)
bitmap_t = Array(row=1, size=NUM_AGG, w=NUM_WORKER)
agg_data_t = Array(row=VEC_DIM, size=NUM_AGG, w=32)
valid_t = Array(row=1, size=NUM_AGG, w=1)
hash_f = Hash(type="crc_16", key=hdr.seq, ceil=NUM_AGG)
index = get(hash_f, hdr.seq)
seq = get(agg_seq_t, index)
isvalid = get(valid_t, index)
delete = 0
overflow = 0
if hdr.op == ACK:
    if isvalid and seq == hdr.seq:
        delete = 1
    forward(hdr)
else:
    if isvalid == 0 and hdr.overflow == 0:
        write(agg_seq_t, index, hdr.seq)
        write(bitmap_t, index, hdr.bitmap)
        write(agg_data_t, index, hdr.data)
        write(valid_t, index, 1)
        drop()
    elif seq == hdr.seq:
        bitmap = get(bitmap_t, index)
        if bitmap & hdr.bitmap == 0:
            vals = get(agg_data_t, index)
            new_vals = vals + hdr.data
            if new_vals < 0:
                overflow = 1
                delete = 1
            new_bit = bitmap | hdr.bitmap
            if overflow:
                mirror(hdr={"bitmap": "bitmap", "data": "vals", "overflow": 1})
                forward(hdr)
            elif new_bit == FULL_BITMAP:
                back(hdr={"op": REQ, "bitmap": "new_bit", "data": "new_vals"})
                delete = 1
            else:
                write(agg_data_t, index, new_vals)
                write(bitmap_t, index, new_bit)
                drop()
        else:
            forward(hdr)
    else:
        forward(hdr)
if delete:
    clear(agg_seq_t, index)
    clear(bitmap_t, index)
    clear(agg_data_t, index)
    clear(valid_t, index)
"""

_SPARSE_MLAGG_SOURCE = """\
from Funclib import *
agg = MLAgg(NUM_AGG, VEC_DIM, IS_CONVERT, SCALE)
for i in range(BLOCK_NUM):
    sparse = 1
    for j in range(BLOCK_SIZE):
        index = BLOCK_NUM * i + j
        if hdr.feat[index] != 0:
            sparse = 0
    if sparse == 1:
        del(hdr.feat, i)
agg(hdr)
"""


@TemplateRegistry.register
class MLAggTemplate(Template):
    """Render the MLAgg template from a profile.

    Configurable options (paper Appendix A.1): whether to convert floating
    point parameters to integers (``precision_dec``), whether to filter sparse
    blocks (``is_sparse``), the aggregator depth, the parameter vector
    dimension and the number of workers.
    """

    app_id = "MLAgg"

    def render(self, profile: Profile) -> TemplateOutput:
        self.validate(profile)
        num_agg = int(profile.get_perf("depth", 5000))
        vec_dim = int(profile.get_perf("dim", 24))
        workers = int(profile.get_perf("workers", 8))
        is_convert = int(profile.get_perf("precision_dec", 3)) > 0
        scale = 10 ** int(profile.get_perf("precision_dec", 3))

        constants = {
            "NUM_AGG": num_agg,
            "VEC_DIM": vec_dim,
            "NUM_WORKER": workers,
            "FULL_BITMAP": (1 << workers) - 1,
            "IS_CONVERT": int(is_convert),
            "SCALE": scale,
        }
        header_fields = {
            "op": 8,
            "seq": 32,
            "bitmap": workers,
            "data": 32 * vec_dim,
            "overflow": 1,
        }
        return TemplateOutput(
            source=_MLAGG_SOURCE, constants=constants, header_fields=header_fields
        )


def sparse_mlagg_source(block_num: int = 4, block_size: int = 6,
                        num_agg: int = 5000, vec_dim: int = 24,
                        is_convert: bool = True, scale: int = 1000) -> TemplateOutput:
    """Return the sparse-gradient-aggregation user program of paper Fig. 7.

    The program wraps the MLAgg template: it scans the parameter vector in
    ``block_num`` blocks of ``block_size`` entries, drops all-zero blocks from
    the packet, and hands the densified payload to the MLAgg instance.
    """
    constants = {
        "BLOCK_NUM": block_num,
        "BLOCK_SIZE": block_size,
        "NUM_AGG": num_agg,
        "VEC_DIM": vec_dim,
        "IS_CONVERT": int(is_convert),
        "SCALE": scale,
        "NUM_WORKER": 8,
        "FULL_BITMAP": (1 << 8) - 1,
    }
    header_fields = {
        "op": 8,
        "seq": 32,
        "bitmap": 8,
        "feat": 32 * block_num * block_size,
        "data": 32 * vec_dim,
        "overflow": 1,
    }
    return TemplateOutput(
        source=_SPARSE_MLAGG_SOURCE, constants=constants, header_fields=header_fields
    )
