"""Template base class and registry.

A template turns a :class:`~repro.lang.profile.Profile` into ClickINC source
text plus the compile-time constants needed to unroll its loops.  Templates
are registered by their App id so the controller can look them up from a
profile alone.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Dict, Tuple, Type

from repro.exceptions import ProfileError
from repro.lang.profile import Profile


@dataclass
class TemplateOutput:
    """The result of rendering a template: source text and its constants."""

    source: str
    constants: Dict[str, object]
    header_fields: Dict[str, int]


class Template(abc.ABC):
    """Base class for all INC program templates."""

    #: Template App id matching :data:`repro.lang.profile.KNOWN_APPS`.
    app_id: str = ""

    @abc.abstractmethod
    def render(self, profile: Profile) -> TemplateOutput:
        """Render the template into ClickINC source using *profile*."""

    def validate(self, profile: Profile) -> None:
        """Check *profile* targets this template and passes its own checks."""
        if profile.app != self.app_id:
            raise ProfileError(
                f"profile app {profile.app!r} does not match template {self.app_id!r}"
            )
        profile.validate_for_template()


class TemplateRegistry:
    """Registry mapping App ids to template classes."""

    _templates: Dict[str, Type[Template]] = {}

    @classmethod
    def register(cls, template_cls: Type[Template]) -> Type[Template]:
        if not template_cls.app_id:
            raise ValueError("template classes must define app_id")
        cls._templates[template_cls.app_id] = template_cls
        return template_cls

    @classmethod
    def get(cls, app_id: str) -> Template:
        try:
            return cls._templates[app_id]()
        except KeyError as exc:
            raise ProfileError(f"no template registered for app {app_id!r}") from exc

    @classmethod
    def known_apps(cls) -> Tuple[str, ...]:
        return tuple(sorted(cls._templates))


def get_template(app_id: str) -> Template:
    """Return a fresh template instance for *app_id*."""
    return TemplateRegistry.get(app_id)
