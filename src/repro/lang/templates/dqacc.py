"""SQL DISTINCT acceleration (DQAcc) template.

The switch keeps a hash-indexed rolling cache of recently seen values
(approximating LRU with a rolling replacement pointer).  A query whose value
is already present in the cache is filtered (dropped) before it reaches the
database server; new values are inserted and forwarded (paper Appendix A.1).
"""

from __future__ import annotations

from repro.lang.profile import Profile
from repro.lang.templates.base import Template, TemplateOutput, TemplateRegistry

_DQACC_SOURCE = """\
from Funclib import *
rolling = Array(row=CACHE_LEN, size=CACHE_DEPTH, w=VALUE_WIDTH)
roll_ptr = Array(row=1, size=CACHE_DEPTH, w=8)
hash_f = Hash(type="crc_16", key=hdr.value, ceil=CACHE_DEPTH)
slot = get(hash_f, hdr.value)
seen = 0
for i in range(CACHE_LEN):
    cached = get(rolling, slot, i)
    if cached == hdr.value:
        seen = 1
if seen == 1:
    drop()
else:
    ptr = get(roll_ptr, slot)
    write(rolling, slot, hdr.value, ptr)
    nxt = (ptr + 1) % CACHE_LEN
    write(roll_ptr, slot, nxt)
    forward(hdr)
"""


@TemplateRegistry.register
class DQAccTemplate(Template):
    """Render the DQAcc template from a profile.

    Configurable options (paper Appendix A.1): cache depth (``c_depth``),
    cache associativity / length (``c_len``), value width and the hash
    algorithm used for slot selection.
    """

    app_id = "DQAcc"

    def render(self, profile: Profile) -> TemplateOutput:
        self.validate(profile)
        depth = int(profile.get_perf("c_depth", 5000))
        length = int(profile.get_perf("c_len", 8))
        value_width = int(profile.packet_format.app_fields.get("value", 32))

        constants = {
            "CACHE_DEPTH": depth,
            "CACHE_LEN": length,
            "VALUE_WIDTH": value_width,
        }
        header_fields = {"op": 8, "value": value_width}
        return TemplateOutput(
            source=_DQACC_SOURCE, constants=constants, header_fields=header_fields
        )
