"""Built-in INC program templates (paper Appendix A.1).

The service provider ships common INC programs as templates that users
instantiate via a configuration :class:`~repro.lang.profile.Profile`:

* :class:`~repro.lang.templates.kvs.KVSTemplate` — in-network key-value cache
  with a heavy-hitter detector for missed queries (NetCache-style).
* :class:`~repro.lang.templates.mlagg.MLAggTemplate` — in-network ML gradient
  aggregation with aggregator arrays, worker bitmaps and overflow handling.
* :class:`~repro.lang.templates.dqacc.DQAccTemplate` — SQL ``DISTINCT``
  acceleration with a hash-indexed rolling cache.
* :func:`~repro.lang.templates.mlagg.sparse_mlagg_source` — the user-extended
  sparse gradient aggregation program of paper Fig. 7.
"""

from repro.lang.templates.base import Template, TemplateRegistry, get_template
from repro.lang.templates.kvs import KVSTemplate
from repro.lang.templates.mlagg import MLAggTemplate, sparse_mlagg_source
from repro.lang.templates.dqacc import DQAccTemplate

__all__ = [
    "Template",
    "TemplateRegistry",
    "get_template",
    "KVSTemplate",
    "MLAggTemplate",
    "DQAccTemplate",
    "sparse_mlagg_source",
]
