"""Key-value store (KVS) template — a NetCache-style in-network cache.

The switch-side program keeps an exact-match cache of hot keys, a per-entry
hit counter, and a heavy-hitter detector (count-min sketch plus bloom filter)
for queries that miss the cache, so the control plane can promote hot keys
(paper Appendix A.1, Fig. 15).
"""

from __future__ import annotations

from repro.lang.profile import Profile
from repro.lang.templates.base import Template, TemplateOutput, TemplateRegistry

_KVS_SOURCE = """\
from Funclib import *
cache = Table(type="exact", keys=hdr.key, vals=hdr.val, size=CACHE_DEPTH,
              key_width=KEY_WIDTH, value_width=VALUE_WIDTH, stateful=STATEFUL_CACHE)
hits = Array(row=1, size=CACHE_DEPTH, w=32)
cms = Sketch(type="count-min", keys=hdr.key, row=CMS_ROWS, size=CMS_SIZE, w=32)
bf = Sketch(type="bloom-filter", keys=hdr.key, row=BF_ROWS, size=BF_SIZE)
if hdr.op == REQUEST:
    vals = get(cache, hdr.key)
    if vals != None:
        count(hits, hdr.key, 1)
        back(hdr={"op": REPLY, "vals": "vals"})
    else:
        count(cms, hdr.key, 1)
        if get(cms, hdr.key) > TH:
            write(bf, hdr.key, 1)
            copyto("CPU", hdr.key)
        forward(hdr)
elif hdr.op == UPDATE:
    write(cache, hdr.key, hdr.vals)
    drop()
else:
    forward(hdr)
"""


@TemplateRegistry.register
class KVSTemplate(Template):
    """Render the KVS template from a profile.

    Configurable options (paper Appendix A.1): cache depth, count-min sketch
    rows / size, bloom-filter rows / size, key and value widths, and the
    heavy-hitter threshold.  Resource-related parameters omitted from the
    profile are filled in by :mod:`repro.apps.autoconfig`.
    """

    app_id = "KVS"

    def render(self, profile: Profile) -> TemplateOutput:
        self.validate(profile)
        depth = int(profile.get_perf("depth", 5000))
        cms_rows = int(profile.get_perf("cms_rows", 3))
        cms_size = int(profile.get_perf("cms_size", 1024))
        bf_rows = int(profile.get_perf("bf_rows", 3))
        bf_size = int(profile.get_perf("bf_size", 8192))
        threshold = int(profile.get_perf("hh_threshold", 128))
        key_width = int(profile.packet_format.app_fields.get("key", 128))
        value_width = int(profile.packet_format.app_fields.get("value_0", 32))
        value_dim = int(profile.get_perf("value_dim", 16))
        # A data-plane-writable (stateful) cache needs an FPGA / smartNIC;
        # the default NetCache-style cache is read in the data plane and
        # updated through the control plane, so it fits on switch ASICs.
        stateful_cache = bool(profile.get_perf("stateful_cache", False))

        constants = {
            "STATEFUL_CACHE": stateful_cache,
            "CACHE_DEPTH": depth,
            "CMS_ROWS": cms_rows,
            "CMS_SIZE": cms_size,
            "BF_ROWS": bf_rows,
            "BF_SIZE": bf_size,
            "TH": threshold,
            "KEY_WIDTH": key_width,
            "VALUE_WIDTH": value_width * value_dim,
        }
        header_fields = {
            "op": 8,
            "key": key_width,
            "val": value_width * value_dim,
            "vals": value_width * value_dim,
        }
        return TemplateOutput(
            source=_KVS_SOURCE, constants=constants, header_fields=header_fields
        )
