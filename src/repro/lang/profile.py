"""Application configuration profiles (paper Fig. 6, Appendix A.2).

A profile accompanies a template-based program and carries four fields:
the template App id, the performance requirements, the per-client traffic
distribution, and the packet format.  The frontend uses profiles to configure
template parameters (Appendix A.3), and the placement layer uses the traffic
distribution to weigh paths.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.exceptions import ProfileError

#: Template App ids recognised by the library (paper Appendix A / Table 10).
KNOWN_APPS = ("KVS", "MLAgg", "DQAcc", "OPSketch", "DDoSAD")


@dataclass
class TrafficSpec:
    """Upper limit of querying frequency per client, in packets per second."""

    client_rates_pps: Dict[str, float] = field(default_factory=dict)

    def total_pps(self) -> float:
        return float(sum(self.client_rates_pps.values()))

    def rate_for(self, client: str) -> float:
        return float(self.client_rates_pps.get(client, 0.0))

    @classmethod
    def uniform(cls, clients: List[str], pps: float) -> "TrafficSpec":
        return cls({client: pps for client in clients})


@dataclass
class PacketFormat:
    """Packet format description: the standard stack plus app-specific headers."""

    network: str = "ethernet/ipv4/udp"
    app_fields: Dict[str, int] = field(default_factory=dict)  # name -> bit width

    def header_bits(self) -> int:
        base = {"ethernet": 112, "ipv4": 160, "ipv6": 320, "udp": 64, "tcp": 160}
        total = sum(base.get(layer, 0) for layer in self.network.split("/"))
        return total + sum(self.app_fields.values())


@dataclass
class Profile:
    """A full configuration profile for a template-based INC program.

    Attributes
    ----------
    app:
        Template id (one of :data:`KNOWN_APPS`).
    performance:
        Free-form performance requirements, e.g. ``{"max_hit_acc": [0.7, 0.3],
        "depth": 1000}`` for KVS or ``{"precision_dec": 3, "is_sparse": 0}``
        for MLAgg.
    traffic:
        Per-client traffic rates.
    packet_format:
        Wire format of the application traffic.
    user:
        The submitting user's id; used for isolation annotations.
    """

    app: str
    performance: Dict[str, object] = field(default_factory=dict)
    traffic: TrafficSpec = field(default_factory=TrafficSpec)
    packet_format: PacketFormat = field(default_factory=PacketFormat)
    user: str = "user0"

    def __post_init__(self) -> None:
        if self.app not in KNOWN_APPS:
            raise ProfileError(
                f"unknown template app {self.app!r}; expected one of {KNOWN_APPS}"
            )

    # ------------------------------------------------------------------ #
    # typed accessors with defaults per template
    # ------------------------------------------------------------------ #
    def get_perf(self, key: str, default=None):
        return self.performance.get(key, default)

    def require_perf(self, key: str):
        if key not in self.performance:
            raise ProfileError(
                f"profile for {self.app!r} is missing performance key {key!r}"
            )
        return self.performance[key]

    def validate_for_template(self) -> None:
        """Check the profile carries sane values for its template."""
        if self.app == "KVS":
            depth = self.get_perf("depth", 1000)
            if not isinstance(depth, (int, float)) or depth <= 0:
                raise ProfileError("KVS profile: 'depth' must be a positive number")
            weights = self.get_perf("max_hit_acc", [0.7, 0.3])
            if len(weights) != 2 or abs(sum(weights) - 1.0) > 1e-6:
                raise ProfileError(
                    "KVS profile: 'max_hit_acc' must be two weights summing to 1"
                )
        elif self.app == "MLAgg":
            depth = self.get_perf("depth", 500)
            if depth <= 0:
                raise ProfileError("MLAgg profile: 'depth' must be positive")
            precision = self.get_perf("precision_dec", 3)
            if precision < 0:
                raise ProfileError("MLAgg profile: 'precision_dec' must be >= 0")
        elif self.app == "DQAcc":
            depth = self.get_perf("c_depth", 1500)
            length = self.get_perf("c_len", 8)
            if depth <= 0 or length <= 0:
                raise ProfileError("DQAcc profile: cache dimensions must be positive")

    # ------------------------------------------------------------------ #
    # serialisation
    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict:
        return {
            "app": self.app,
            "performance": dict(self.performance),
            "traffic frequency": dict(self.traffic.client_rates_pps),
            "packet_format": {
                "network": self.packet_format.network,
                **{k: f"bit_{v}" for k, v in self.packet_format.app_fields.items()},
            },
            "user": self.user,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Profile":
        traffic = TrafficSpec(dict(data.get("traffic frequency", {})))
        pf_data = dict(data.get("packet_format", {}))
        network = pf_data.pop("network", "ethernet/ipv4/udp")
        app_fields = {}
        for key, value in pf_data.items():
            if isinstance(value, str) and value.startswith("bit_"):
                app_fields[key] = int(value.split("_", 1)[1])
            elif isinstance(value, int):
                app_fields[key] = value
        return cls(
            app=data["app"],
            performance=dict(data.get("performance", {})),
            traffic=traffic,
            packet_format=PacketFormat(network=network, app_fields=app_fields),
            user=data.get("user", "user0"),
        )


def default_profile(app: str, user: str = "user0") -> Profile:
    """Return a sensible default profile for *app* (paper Table 10 defaults)."""
    if app == "KVS":
        return Profile(
            app="KVS",
            performance={"max_hit_acc": [0.7, 0.3], "depth": 5000},
            traffic=TrafficSpec({"c1": 10e6, "c2": 20e6}),
            packet_format=PacketFormat(
                app_fields={"op": 8, "key": 128, "value_0": 32}
            ),
            user=user,
        )
    if app == "MLAgg":
        return Profile(
            app="MLAgg",
            performance={"precision_dec": 3, "is_sparse": 0, "depth": 5000,
                         "dim": 24, "workers": 8},
            traffic=TrafficSpec({"w1": 5e6, "w2": 5e6}),
            packet_format=PacketFormat(
                app_fields={"op": 8, "seq": 32, "bitmap": 32, "data": 32 * 24}
            ),
            user=user,
        )
    if app == "DQAcc":
        return Profile(
            app="DQAcc",
            performance={"c_depth": 5000, "c_len": 8},
            traffic=TrafficSpec({"c1": 10e6}),
            packet_format=PacketFormat(app_fields={"op": 8, "value": 32}),
            user=user,
        )
    raise ProfileError(f"no default profile for app {app!r}")
