"""Abstract syntax tree of the ClickINC language.

The AST mirrors the grammar of paper Fig. 5: a program is a list of
statements; statements are assignments, object declarations, branches,
loops and bare primitive calls; expressions are constants, names, header
field references, indexing, unary/binary operations, comparisons and calls.

The nodes are intentionally plain dataclasses — all semantic work (type
checking, lowering to IR) lives in :mod:`repro.frontend`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Union

from repro.lang.objects import ObjectKind


# --------------------------------------------------------------------------- #
# expressions
# --------------------------------------------------------------------------- #
@dataclass
class Constant:
    """A literal integer, float, string or boolean."""

    value: object


@dataclass
class Name:
    """A reference to a local variable or declared object."""

    ident: str


@dataclass
class FieldRef:
    """A packet-header field reference such as ``hdr.key`` or ``hdr.op``."""

    base: str
    fieldname: str

    @property
    def qualified(self) -> str:
        return f"{self.base}.{self.fieldname}"


@dataclass
class IndexRef:
    """A subscript expression such as ``hdr.feat[index]`` or ``vals[i]``."""

    base: "Expr"
    index: "Expr"


@dataclass
class BinOp:
    """A binary arithmetic / bit operation (``+ - * / % & | ^ << >>``)."""

    op: str
    left: "Expr"
    right: "Expr"


@dataclass
class UnaryOp:
    """A unary operation (``-``, ``~``, ``not``)."""

    op: str
    operand: "Expr"


@dataclass
class Compare:
    """A comparison (``< <= > >= == !=``), possibly chained with and/or."""

    op: str
    left: "Expr"
    right: "Expr"


@dataclass
class BoolOp:
    """``and`` / ``or`` of two or more sub-predicates."""

    op: str  # "and" | "or"
    values: List["Expr"] = field(default_factory=list)


@dataclass
class Call:
    """A function or primitive call such as ``get(cache, hdr.key)``.

    ``func`` is the bare callable name; positional and keyword arguments are
    kept separately so the frontend can validate primitive signatures.
    """

    func: str
    args: List["Expr"] = field(default_factory=list)
    kwargs: dict = field(default_factory=dict)


@dataclass
class ListExpr:
    """A list literal or ``list()`` constructor (used for accumulators)."""

    elements: List["Expr"] = field(default_factory=list)


Expr = Union[
    Constant, Name, FieldRef, IndexRef, BinOp, UnaryOp, Compare, BoolOp, Call, ListExpr
]


# --------------------------------------------------------------------------- #
# statements
# --------------------------------------------------------------------------- #
@dataclass
class ObjectDecl:
    """Declaration of an INC object: ``mem = Array(row=3, size=65536, w=32)``."""

    name: str
    kind: ObjectKind
    kwargs: dict = field(default_factory=dict)
    lineno: int = 0


@dataclass
class Assign:
    """A simple assignment ``var = expr`` (or subscript target)."""

    target: Expr
    value: Expr
    lineno: int = 0


@dataclass
class AugAssign:
    """An augmented assignment such as ``counter += 1``."""

    target: Expr
    op: str
    value: Expr
    lineno: int = 0


@dataclass
class ExprStatement:
    """A bare expression statement — typically a primitive call like ``drop()``."""

    value: Expr
    lineno: int = 0


@dataclass
class IfElse:
    """``if cond: body [elif ...] else: orelse``.

    ``elif`` chains are normalised by the parser into nested IfElse nodes in
    the ``orelse`` list.
    """

    condition: Expr
    body: List["Statement"] = field(default_factory=list)
    orelse: List["Statement"] = field(default_factory=list)
    lineno: int = 0


@dataclass
class ForLoop:
    """``for var in range(...)`` — the only loop form the grammar allows."""

    var: str
    start: Expr = field(default_factory=lambda: Constant(0))
    stop: Expr = field(default_factory=lambda: Constant(0))
    step: Expr = field(default_factory=lambda: Constant(1))
    body: List["Statement"] = field(default_factory=list)
    lineno: int = 0


@dataclass
class DeleteStatement:
    """``del(obj, index)`` — remove an entry from a stateful object."""

    args: List[Expr] = field(default_factory=list)
    lineno: int = 0


@dataclass
class TemplateInstance:
    """Instantiation of a library template, e.g. ``agg = MLAgg(row, dim, ...)``."""

    name: str
    template: str
    args: List[Expr] = field(default_factory=list)
    kwargs: dict = field(default_factory=dict)
    lineno: int = 0


@dataclass
class TemplateCall:
    """Invocation of an instantiated template on a packet, e.g. ``agg(hdr)``."""

    instance: str
    args: List[Expr] = field(default_factory=list)
    lineno: int = 0


Statement = Union[
    ObjectDecl,
    Assign,
    AugAssign,
    ExprStatement,
    IfElse,
    ForLoop,
    DeleteStatement,
    TemplateInstance,
    TemplateCall,
]


@dataclass
class Module:
    """A complete ClickINC user program."""

    name: str
    body: List[Statement] = field(default_factory=list)
    source: str = ""

    def loc(self) -> int:
        """Lines of code of the original source (non-blank, non-comment)."""
        lines = [
            ln
            for ln in self.source.splitlines()
            if ln.strip() and not ln.strip().startswith("#")
        ]
        return len(lines)


def walk_statements(statements: Sequence[Statement]):
    """Yield every statement in *statements*, recursing into bodies."""
    for stmt in statements:
        yield stmt
        if isinstance(stmt, IfElse):
            yield from walk_statements(stmt.body)
            yield from walk_statements(stmt.orelse)
        elif isinstance(stmt, ForLoop):
            yield from walk_statements(stmt.body)


def walk_expressions(expr: Expr):
    """Yield *expr* and every sub-expression below it."""
    yield expr
    if isinstance(expr, BinOp):
        yield from walk_expressions(expr.left)
        yield from walk_expressions(expr.right)
    elif isinstance(expr, UnaryOp):
        yield from walk_expressions(expr.operand)
    elif isinstance(expr, Compare):
        yield from walk_expressions(expr.left)
        yield from walk_expressions(expr.right)
    elif isinstance(expr, BoolOp):
        for value in expr.values:
            yield from walk_expressions(value)
    elif isinstance(expr, Call):
        for arg in expr.args:
            yield from walk_expressions(arg)
        for arg in expr.kwargs.values():
            if not isinstance(arg, (int, float, str, bool, type(None))):
                yield from walk_expressions(arg)
    elif isinstance(expr, IndexRef):
        yield from walk_expressions(expr.base)
        yield from walk_expressions(expr.index)
    elif isinstance(expr, ListExpr):
        for element in expr.elements:
            yield from walk_expressions(element)
