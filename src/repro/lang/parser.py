"""Parser from Python-style ClickINC source to the ClickINC AST.

The parser is built on CPython's :mod:`ast` module: user programs are parsed
as ordinary Python, then the resulting tree is converted into the restricted
ClickINC AST (:mod:`repro.lang.ast_nodes`).  Anything outside the grammar of
paper Fig. 5 — ``while`` loops, function/class definitions, ``import`` of
arbitrary modules, comprehensions — is rejected with a
:class:`~repro.exceptions.LanguageError` that names the offending line.
"""

from __future__ import annotations

import ast as pyast
from typing import Dict, List, Optional

from repro.exceptions import LanguageError
from repro.lang import ast_nodes as cnodes
from repro.lang.objects import ObjectKind

#: Names of the INC object constructors.
_OBJECT_NAMES = {kind.value: kind for kind in ObjectKind}

#: Names of INC templates a program may instantiate (paper Appendix A.1).
_TEMPLATE_NAMES = {"MLAgg", "KVS", "DQAcc"}

#: Primitive and builtin call names accepted in expressions / statements.
ALLOWED_CALLS = {
    # INC primitives (paper Fig. 5 "Primitive P")
    "get", "write", "clear", "count", "drop", "fwd", "forward", "copy",
    "copyto", "back", "mirror", "read", "del", "append",
    # Python builtins supported by the language (paper Table 7)
    "min", "max", "sum", "abs", "pow", "round", "range", "len", "list",
    "dict", "ceil", "floor", "sqrt", "randint", "slice", "width",
}

#: Symbolic protocol constants usable without declaration (REQUEST, ACK, ...).
SYMBOLIC_CONSTANTS = {
    "REQUEST": 1,
    "REPLY": 2,
    "UPDATE": 3,
    "ACK": 4,
    "REQ": 5,
    "TH": 128,
    "None": None,
    "True": True,
    "False": False,
}

_BINOPS = {
    pyast.Add: "+",
    pyast.Sub: "-",
    pyast.Mult: "*",
    pyast.Div: "/",
    pyast.FloorDiv: "//",
    pyast.Mod: "%",
    pyast.BitAnd: "&",
    pyast.BitOr: "|",
    pyast.BitXor: "^",
    pyast.LShift: "<<",
    pyast.RShift: ">>",
    pyast.Pow: "**",
}

_CMPOPS = {
    pyast.Lt: "<",
    pyast.LtE: "<=",
    pyast.Gt: ">",
    pyast.GtE: ">=",
    pyast.Eq: "==",
    pyast.NotEq: "!=",
    pyast.In: "in",
    pyast.NotIn: "not in",
}

_UNARYOPS = {
    pyast.USub: "-",
    pyast.Invert: "~",
    pyast.Not: "not",
    pyast.UAdd: "+",
}


def parse_program(source: str, name: str = "user_program",
                  constants: Optional[Dict[str, object]] = None) -> cnodes.Module:
    """Parse ClickINC *source* into a :class:`~repro.lang.ast_nodes.Module`.

    Parameters
    ----------
    source:
        Python-style ClickINC program text.
    name:
        Program name (becomes the IR program / owner name downstream).
    constants:
        Extra compile-time constants (e.g. ``BlockNum``, ``Num_agg``) that the
        program may reference; these are resolved by the frontend during loop
        unrolling.
    """
    try:
        tree = pyast.parse(source)
    except SyntaxError as exc:
        raise LanguageError(f"{name}: Python-level syntax error: {exc}") from exc

    converter = _Converter(name, constants or {})
    body = converter.convert_body(tree.body)
    return cnodes.Module(name=name, body=body, source=source)


class _Converter:
    """Stateful converter from the Python AST to the ClickINC AST."""

    def __init__(self, program_name: str, constants: Dict[str, object]) -> None:
        self.program_name = program_name
        self.constants = dict(constants)
        self.template_instances: Dict[str, str] = {}

    # -- statements --------------------------------------------------------
    def convert_body(self, stmts: List[pyast.stmt]) -> List[cnodes.Statement]:
        converted: List[cnodes.Statement] = []
        for stmt in stmts:
            node = self.convert_statement(stmt)
            if node is not None:
                converted.append(node)
        return converted

    def convert_statement(self, stmt: pyast.stmt) -> Optional[cnodes.Statement]:
        if isinstance(stmt, (pyast.Import, pyast.ImportFrom)):
            return self._convert_import(stmt)
        if isinstance(stmt, pyast.Assign):
            return self._convert_assign(stmt)
        if isinstance(stmt, pyast.AugAssign):
            return self._convert_augassign(stmt)
        if isinstance(stmt, pyast.If):
            return self._convert_if(stmt)
        if isinstance(stmt, pyast.For):
            return self._convert_for(stmt)
        if isinstance(stmt, pyast.Expr):
            return self._convert_expr_statement(stmt)
        if isinstance(stmt, pyast.Delete):
            return self._convert_delete(stmt)
        if isinstance(stmt, pyast.Pass):
            return None
        raise LanguageError(
            f"{self.program_name}: line {stmt.lineno}: statement "
            f"{type(stmt).__name__} is outside the ClickINC grammar"
        )

    def _convert_import(self, stmt) -> None:
        # "from Funclib import *" and similar library imports are accepted and
        # ignored: the module library is linked by the frontend, not at parse
        # time.  Importing anything else is rejected.
        if isinstance(stmt, pyast.ImportFrom):
            module = stmt.module or ""
            if module.lower() in {"funclib", "clickinc", "inc", "templates"}:
                return None
        if isinstance(stmt, pyast.Import):
            names = {alias.name.lower() for alias in stmt.names}
            if names <= {"funclib", "clickinc", "inc", "templates"}:
                return None
        raise LanguageError(
            f"{self.program_name}: line {stmt.lineno}: only the ClickINC "
            "module library may be imported"
        )

    def _convert_assign(self, stmt: pyast.Assign) -> cnodes.Statement:
        if len(stmt.targets) != 1:
            raise LanguageError(
                f"{self.program_name}: line {stmt.lineno}: multiple assignment "
                "targets are not supported"
            )
        target = stmt.targets[0]
        # Object declaration:  name = Array(...)/Table(...)/...
        if isinstance(target, pyast.Name) and isinstance(stmt.value, pyast.Call):
            call_name = _call_func_name(stmt.value)
            if call_name in _OBJECT_NAMES:
                kwargs = self._convert_kwargs(stmt.value)
                return cnodes.ObjectDecl(
                    name=target.id,
                    kind=_OBJECT_NAMES[call_name],
                    kwargs=kwargs,
                    lineno=stmt.lineno,
                )
            if call_name in _TEMPLATE_NAMES:
                self.template_instances[target.id] = call_name
                return cnodes.TemplateInstance(
                    name=target.id,
                    template=call_name,
                    args=[self.convert_expr(a) for a in stmt.value.args],
                    kwargs=self._convert_kwargs(stmt.value),
                    lineno=stmt.lineno,
                )
        # Tuple assignment like "delete = 0, overflow = 0" is not valid Python;
        # the paper's template uses it informally.  Plain tuple targets are
        # rejected; callers should write one assignment per line.
        if isinstance(target, (pyast.Tuple, pyast.List)):
            raise LanguageError(
                f"{self.program_name}: line {stmt.lineno}: tuple assignment is "
                "not supported; write one assignment per line"
            )
        return cnodes.Assign(
            target=self.convert_expr(target),
            value=self.convert_expr(stmt.value),
            lineno=stmt.lineno,
        )

    def _convert_augassign(self, stmt: pyast.AugAssign) -> cnodes.AugAssign:
        op = _BINOPS.get(type(stmt.op))
        if op is None:
            raise LanguageError(
                f"{self.program_name}: line {stmt.lineno}: unsupported augmented "
                f"assignment operator {type(stmt.op).__name__}"
            )
        return cnodes.AugAssign(
            target=self.convert_expr(stmt.target),
            op=op,
            value=self.convert_expr(stmt.value),
            lineno=stmt.lineno,
        )

    def _convert_if(self, stmt: pyast.If) -> cnodes.IfElse:
        return cnodes.IfElse(
            condition=self.convert_expr(stmt.test),
            body=self.convert_body(stmt.body),
            orelse=self.convert_body(stmt.orelse),
            lineno=stmt.lineno,
        )

    def _convert_for(self, stmt: pyast.For) -> cnodes.ForLoop:
        if stmt.orelse:
            raise LanguageError(
                f"{self.program_name}: line {stmt.lineno}: for/else is not supported"
            )
        if not isinstance(stmt.target, pyast.Name):
            raise LanguageError(
                f"{self.program_name}: line {stmt.lineno}: loop variable must be "
                "a simple name"
            )
        if not (isinstance(stmt.iter, pyast.Call) and _call_func_name(stmt.iter) == "range"):
            raise LanguageError(
                f"{self.program_name}: line {stmt.lineno}: only 'for ... in "
                "range(...)' loops are supported"
            )
        range_args = [self.convert_expr(a) for a in stmt.iter.args]
        start: cnodes.Expr = cnodes.Constant(0)
        step: cnodes.Expr = cnodes.Constant(1)
        if len(range_args) == 1:
            stop = range_args[0]
        elif len(range_args) == 2:
            start, stop = range_args
        elif len(range_args) == 3:
            start, stop, step = range_args
        else:
            raise LanguageError(
                f"{self.program_name}: line {stmt.lineno}: range() takes 1-3 arguments"
            )
        return cnodes.ForLoop(
            var=stmt.target.id,
            start=start,
            stop=stop,
            step=step,
            body=self.convert_body(stmt.body),
            lineno=stmt.lineno,
        )

    def _convert_expr_statement(self, stmt: pyast.Expr) -> cnodes.Statement:
        value = stmt.value
        if isinstance(value, pyast.Call):
            call_name = _call_func_name(value)
            if call_name in self.template_instances:
                return cnodes.TemplateCall(
                    instance=call_name,
                    args=[self.convert_expr(a) for a in value.args],
                    lineno=stmt.lineno,
                )
            if call_name not in ALLOWED_CALLS:
                raise LanguageError(
                    f"{self.program_name}: line {stmt.lineno}: call to unknown "
                    f"function {call_name!r}"
                )
        # Accept bare names such as the paper's "drop" shorthand.
        if isinstance(value, pyast.Name) and value.id in {"drop", "fwd", "forward"}:
            return cnodes.ExprStatement(
                value=cnodes.Call(func=value.id), lineno=stmt.lineno
            )
        return cnodes.ExprStatement(value=self.convert_expr(value), lineno=stmt.lineno)

    def _convert_delete(self, stmt: pyast.Delete) -> cnodes.DeleteStatement:
        args: List[cnodes.Expr] = []
        for target in stmt.targets:
            if isinstance(target, pyast.Tuple):
                args.extend(self.convert_expr(elt) for elt in target.elts)
            else:
                args.append(self.convert_expr(target))
        return cnodes.DeleteStatement(args=args, lineno=stmt.lineno)

    # -- expressions ---------------------------------------------------------
    def convert_expr(self, expr: pyast.expr) -> cnodes.Expr:
        if isinstance(expr, pyast.Constant):
            return cnodes.Constant(expr.value)
        if isinstance(expr, pyast.Name):
            if expr.id in SYMBOLIC_CONSTANTS:
                return cnodes.Constant(SYMBOLIC_CONSTANTS[expr.id])
            if expr.id in self.constants:
                return cnodes.Constant(self.constants[expr.id])
            return cnodes.Name(expr.id)
        if isinstance(expr, pyast.Attribute):
            base = expr.value
            if isinstance(base, pyast.Name):
                return cnodes.FieldRef(base=base.id, fieldname=expr.attr)
            raise LanguageError(
                f"{self.program_name}: nested attribute access is not supported"
            )
        if isinstance(expr, pyast.Subscript):
            return cnodes.IndexRef(
                base=self.convert_expr(expr.value),
                index=self.convert_expr(expr.slice),
            )
        if isinstance(expr, pyast.BinOp):
            op = _BINOPS.get(type(expr.op))
            if op is None:
                raise LanguageError(
                    f"{self.program_name}: unsupported binary operator "
                    f"{type(expr.op).__name__}"
                )
            return cnodes.BinOp(
                op=op,
                left=self.convert_expr(expr.left),
                right=self.convert_expr(expr.right),
            )
        if isinstance(expr, pyast.UnaryOp):
            op = _UNARYOPS.get(type(expr.op))
            if op is None:
                raise LanguageError(
                    f"{self.program_name}: unsupported unary operator "
                    f"{type(expr.op).__name__}"
                )
            return cnodes.UnaryOp(op=op, operand=self.convert_expr(expr.operand))
        if isinstance(expr, pyast.Compare):
            if len(expr.ops) != 1 or len(expr.comparators) != 1:
                raise LanguageError(
                    f"{self.program_name}: chained comparisons are not supported"
                )
            op = _CMPOPS.get(type(expr.ops[0]))
            if op is None:
                raise LanguageError(
                    f"{self.program_name}: unsupported comparison "
                    f"{type(expr.ops[0]).__name__}"
                )
            return cnodes.Compare(
                op=op,
                left=self.convert_expr(expr.left),
                right=self.convert_expr(expr.comparators[0]),
            )
        if isinstance(expr, pyast.BoolOp):
            op = "and" if isinstance(expr.op, pyast.And) else "or"
            return cnodes.BoolOp(
                op=op, values=[self.convert_expr(v) for v in expr.values]
            )
        if isinstance(expr, pyast.Call):
            return self._convert_call(expr)
        if isinstance(expr, (pyast.List, pyast.Tuple)):
            return cnodes.ListExpr(elements=[self.convert_expr(e) for e in expr.elts])
        if isinstance(expr, pyast.Dict):
            # dict literals appear only as primitive kwargs like back(hdr={...});
            # keep them as a constant payload description.
            keys = [k.value if isinstance(k, pyast.Constant) else _expr_to_str(k)
                    for k in expr.keys]
            values = [self.convert_expr(v) for v in expr.values]
            return cnodes.Constant(dict(zip(keys, values)))
        raise LanguageError(
            f"{self.program_name}: expression {type(expr).__name__} is outside "
            "the ClickINC grammar"
        )

    def _convert_call(self, expr: pyast.Call) -> cnodes.Expr:
        func_name = _call_func_name(expr)
        if func_name is None:
            raise LanguageError(
                f"{self.program_name}: only direct calls to named functions are "
                "supported"
            )
        # Method-style access such as bitmap_t.read(index) or
        # agg_data_t.read(key=index) is normalised to read(bitmap_t, index).
        if isinstance(expr.func, pyast.Attribute) and isinstance(expr.func.value, pyast.Name):
            obj_name = expr.func.value.id
            method = expr.func.attr
            args = [cnodes.Name(obj_name)]
            args.extend(self.convert_expr(a) for a in expr.args)
            kwargs = self._convert_kwargs(expr)
            if method not in ALLOWED_CALLS:
                raise LanguageError(
                    f"{self.program_name}: unknown method {method!r} on {obj_name!r}"
                )
            return cnodes.Call(func=method, args=args, kwargs=kwargs)
        if func_name in self.template_instances:
            return cnodes.Call(
                func=func_name, args=[self.convert_expr(a) for a in expr.args]
            )
        if func_name not in ALLOWED_CALLS and func_name not in _OBJECT_NAMES:
            raise LanguageError(
                f"{self.program_name}: call to unknown function {func_name!r}"
            )
        return cnodes.Call(
            func=func_name,
            args=[self.convert_expr(a) for a in expr.args],
            kwargs=self._convert_kwargs(expr),
        )

    def _convert_kwargs(self, call: pyast.Call) -> dict:
        kwargs = {}
        for keyword in call.keywords:
            if keyword.arg is None:
                raise LanguageError(
                    f"{self.program_name}: **kwargs expansion is not supported"
                )
            value = keyword.value
            if isinstance(value, pyast.Constant):
                kwargs[keyword.arg] = value.value
            elif isinstance(value, pyast.Attribute) and isinstance(value.value, pyast.Name):
                kwargs[keyword.arg] = f"{value.value.id}.{value.attr}"
            elif isinstance(value, pyast.Name):
                resolved = self.constants.get(value.id, SYMBOLIC_CONSTANTS.get(value.id))
                kwargs[keyword.arg] = resolved if resolved is not None else value.id
            elif isinstance(value, pyast.Dict):
                kwargs[keyword.arg] = _expr_to_str(value)
            elif isinstance(value, pyast.UnaryOp) and isinstance(value.op, pyast.USub) \
                    and isinstance(value.operand, pyast.Constant):
                kwargs[keyword.arg] = -value.operand.value
            else:
                kwargs[keyword.arg] = self.convert_expr(value)
        return kwargs


def _call_func_name(call: pyast.Call) -> Optional[str]:
    if isinstance(call.func, pyast.Name):
        return call.func.id
    if isinstance(call.func, pyast.Attribute):
        return call.func.attr
    return None


def _expr_to_str(expr: pyast.expr) -> str:
    try:
        return pyast.unparse(expr)
    except Exception:  # pragma: no cover - unparse availability
        return repr(expr)
