"""INC object types of the ClickINC language (paper Fig. 5, "Object O").

Objects are the collective data types a user program can declare: stateful
arrays, match tables, hash functions, sequences, sketches and crypto units.
Each spec knows how to describe itself as IR state declarations so the
frontend can lower object accesses to stateful IR instructions.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional

from repro.exceptions import LanguageError
from repro.ir.instructions import StateDecl, StateKind


class ObjectKind(str, enum.Enum):
    """Kinds of INC objects available to user programs."""

    ARRAY = "Array"
    TABLE = "Table"
    HASH = "Hash"
    SEQ = "Seq"
    SKETCH = "Sketch"
    CRYPTO = "Crypto"


@dataclass
class ArraySpec:
    """A stateful register array: ``Array(row=3, size=65536, w=32)``."""

    name: str
    rows: int = 1
    size: int = 1024
    width: int = 32

    def __post_init__(self) -> None:
        if self.rows <= 0 or self.size <= 0 or self.width <= 0:
            raise LanguageError(
                f"Array {self.name!r}: row/size/w must all be positive"
            )

    def state_decls(self) -> List[StateDecl]:
        return [
            StateDecl(
                name=self.name,
                kind=StateKind.REGISTER_ARRAY,
                rows=self.rows,
                size=self.size,
                width=self.width,
            )
        ]

    @property
    def total_bits(self) -> int:
        return self.rows * self.size * self.width


@dataclass
class TableSpec:
    """A match table: ``Table(type="exact", keys=hdr.key, vals=hdr.val)``.

    ``match_type`` is one of ``exact``, ``ternary``, ``lpm`` or ``direct``;
    ``stateful`` tables can be written from the data plane (cache insertion).
    """

    name: str
    match_type: str = "exact"
    key_width: int = 32
    value_width: int = 32
    size: int = 1024
    stateful: bool = True

    _VALID_TYPES = ("exact", "ternary", "lpm", "direct")

    def __post_init__(self) -> None:
        if self.match_type not in self._VALID_TYPES:
            raise LanguageError(
                f"Table {self.name!r}: unknown match type {self.match_type!r}; "
                f"expected one of {self._VALID_TYPES}"
            )
        if self.size <= 0 or self.key_width <= 0 or self.value_width <= 0:
            raise LanguageError(f"Table {self.name!r}: sizes must be positive")

    def state_decls(self) -> List[StateDecl]:
        kind = {
            "exact": StateKind.EXACT_TABLE,
            "ternary": StateKind.TERNARY_TABLE,
            "lpm": StateKind.TERNARY_TABLE,
            "direct": StateKind.DIRECT_TABLE,
        }[self.match_type]
        return [
            StateDecl(
                name=self.name,
                kind=kind,
                rows=1,
                size=self.size,
                width=self.value_width,
                key_width=self.key_width,
            )
        ]

    @property
    def total_bits(self) -> int:
        return self.size * (self.key_width + self.value_width)


@dataclass
class HashSpec:
    """A hash function: ``Hash(type="crc_16", key=hdr.key)``.

    Hash objects are stateless; they only consume a hash unit when used.
    ``ceil`` optionally bounds the output to ``[0, ceil)`` (used by MLAgg for
    aggregator indexing).
    """

    name: str
    algorithm: str = "crc_16"
    key_field: Optional[str] = None
    ceil: Optional[int] = None

    _VALID_ALGOS = ("crc_8", "crc_16", "crc_32", "identity", "xor_16")

    def __post_init__(self) -> None:
        if self.algorithm not in self._VALID_ALGOS:
            raise LanguageError(
                f"Hash {self.name!r}: unknown algorithm {self.algorithm!r}; "
                f"expected one of {self._VALID_ALGOS}"
            )
        if self.ceil is not None and self.ceil <= 0:
            raise LanguageError(f"Hash {self.name!r}: ceil must be positive")

    @property
    def output_width(self) -> int:
        return {"crc_8": 8, "crc_16": 16, "crc_32": 32, "identity": 32, "xor_16": 16}[
            self.algorithm
        ]

    def state_decls(self) -> List[StateDecl]:
        return []


@dataclass
class SeqSpec:
    """A sequence tracker: per-flow monotonically increasing sequence numbers."""

    name: str
    size: int = 1024
    width: int = 32

    def __post_init__(self) -> None:
        if self.size <= 0 or self.width <= 0:
            raise LanguageError(f"Seq {self.name!r}: size/width must be positive")

    def state_decls(self) -> List[StateDecl]:
        return [
            StateDecl(
                name=self.name,
                kind=StateKind.REGISTER_ARRAY,
                rows=1,
                size=self.size,
                width=self.width,
            )
        ]


@dataclass
class SketchSpec:
    """A sketch: ``Sketch(type="count-min", keys=hdr.key)`` or bloom-filter.

    A count-min sketch expands into ``rows`` register arrays each indexed by
    an independent hash; a bloom filter is a single bit array with ``rows``
    hash probes.
    """

    name: str
    sketch_type: str = "count-min"
    rows: int = 3
    size: int = 65536
    width: int = 32
    key_field: Optional[str] = None

    _VALID_TYPES = ("count-min", "bloom-filter")

    def __post_init__(self) -> None:
        if self.sketch_type not in self._VALID_TYPES:
            raise LanguageError(
                f"Sketch {self.name!r}: unknown type {self.sketch_type!r}; "
                f"expected one of {self._VALID_TYPES}"
            )
        if self.rows <= 0 or self.size <= 0:
            raise LanguageError(f"Sketch {self.name!r}: rows/size must be positive")
        if self.sketch_type == "bloom-filter":
            self.width = 1

    def state_decls(self) -> List[StateDecl]:
        return [
            StateDecl(
                name=self.name,
                kind=StateKind.REGISTER_ARRAY,
                rows=self.rows,
                size=self.size,
                width=self.width,
            )
        ]

    @property
    def total_bits(self) -> int:
        return self.rows * self.size * self.width


@dataclass
class CryptoSpec:
    """A crypto unit: ``Crypto(type="aes", key=...)``.

    Only FPGA (AES) and NFP (ECS) devices support crypto (paper Table 8), so
    declaring one constrains placement.
    """

    name: str
    algorithm: str = "aes"
    key_width: int = 128

    _VALID_ALGOS = ("aes", "ecs")

    def __post_init__(self) -> None:
        if self.algorithm not in self._VALID_ALGOS:
            raise LanguageError(
                f"Crypto {self.name!r}: unknown algorithm {self.algorithm!r}"
            )

    def state_decls(self) -> List[StateDecl]:
        return []


#: Union type of all object specs (for isinstance checks and typing).
AnyObjectSpec = (ArraySpec, TableSpec, HashSpec, SeqSpec, SketchSpec, CryptoSpec)


def make_object(kind: ObjectKind, name: str, **kwargs) -> object:
    """Factory used by the parser to build an object spec from keyword args.

    Keyword names follow the user-facing language (``row``, ``size``, ``w``,
    ``type``, ``keys``, ``vals``, ``key``, ``ceil``) and are mapped onto the
    spec dataclass fields here, in one place.
    """
    if kind is ObjectKind.ARRAY:
        return ArraySpec(
            name=name,
            rows=int(kwargs.get("row", kwargs.get("rows", 1))),
            size=int(kwargs.get("size", 1024)),
            width=int(kwargs.get("w", kwargs.get("width", 32))),
        )
    if kind is ObjectKind.TABLE:
        return TableSpec(
            name=name,
            match_type=str(kwargs.get("type", "exact")),
            key_width=int(kwargs.get("key_width", 32)),
            value_width=int(kwargs.get("value_width", 32)),
            size=int(kwargs.get("size", 1024)),
            stateful=bool(kwargs.get("stateful", True)),
        )
    if kind is ObjectKind.HASH:
        return HashSpec(
            name=name,
            algorithm=str(kwargs.get("type", "crc_16")),
            key_field=kwargs.get("key"),
            ceil=kwargs.get("ceil"),
        )
    if kind is ObjectKind.SEQ:
        return SeqSpec(
            name=name,
            size=int(kwargs.get("size", 1024)),
            width=int(kwargs.get("w", kwargs.get("width", 32))),
        )
    if kind is ObjectKind.SKETCH:
        return SketchSpec(
            name=name,
            sketch_type=str(kwargs.get("type", "count-min")),
            rows=int(kwargs.get("row", kwargs.get("rows", 3))),
            size=int(kwargs.get("size", 65536)),
            width=int(kwargs.get("w", kwargs.get("width", 32))),
            key_field=kwargs.get("keys"),
        )
    if kind is ObjectKind.CRYPTO:
        return CryptoSpec(
            name=name,
            algorithm=str(kwargs.get("type", "aes")),
            key_width=int(kwargs.get("key_width", 128)),
        )
    raise LanguageError(f"unknown INC object kind {kind!r}")
