"""Platform-independent intermediate representation (IR) for ClickINC.

The IR is the hand-off point between the compiler frontend (which lowers
Python-style user programs) and everything downstream: block construction,
placement, synthesis and chip-specific backends.

Key pieces
----------
* :class:`~repro.ir.instructions.Instruction` — a single IR instruction with
  an opcode, destination, operands and optional guard predicate.
* :class:`~repro.ir.instructions.Opcode` / :class:`~repro.ir.instructions.InstrClass`
  — the instruction set (paper Fig. 17 / Table 8) and the device-capability
  classes used for placement feasibility (paper Table 9).
* :class:`~repro.ir.program.IRProgram` — an ordered, sequentially executed
  instruction list plus state declarations and header fields.
"""

from repro.ir.instructions import (
    InstrClass,
    Instruction,
    Opcode,
    StateKind,
    StateDecl,
    classify,
)
from repro.ir.program import IRProgram
from repro.ir.verify import verify_program

__all__ = [
    "InstrClass",
    "Instruction",
    "Opcode",
    "StateKind",
    "StateDecl",
    "IRProgram",
    "classify",
    "verify_program",
]
