"""Structural verification of IR programs.

Verification catches malformed IR before it hits placement or the emulator:
undeclared states, use-before-def of temporaries, declarations after use and
illegal guard references.  The frontend runs :func:`verify_program` at the end
of every compilation.
"""

from __future__ import annotations

from typing import List

from repro.exceptions import IRError
from repro.ir.instructions import Instruction, Opcode
from repro.ir.program import IRProgram


def verify_program(program: IRProgram, strict: bool = True) -> List[str]:
    """Verify *program* and return a list of diagnostic messages.

    With ``strict=True`` (the default) any diagnostic raises
    :class:`~repro.exceptions.IRError`; otherwise the list is returned to the
    caller for reporting.
    """
    diagnostics: List[str] = []
    defined = set()
    header_prefix = "hdr."

    # header fields and constants are always available
    for name in program.header_fields:
        defined.add(f"{header_prefix}{name}")
    defined.update(program.states.keys())

    for instr in program:
        diagnostics.extend(_check_instruction(program, instr, defined))
        for written in instr.writes():
            defined.add(written)

    if strict and diagnostics:
        raise IRError(
            f"IR verification failed for {program.name!r}:\n  " + "\n  ".join(diagnostics)
        )
    return diagnostics


def _check_instruction(program: IRProgram, instr: Instruction, defined: set) -> List[str]:
    issues: List[str] = []
    if instr.state is not None and instr.state not in program.states:
        issues.append(f"uid {instr.uid}: undeclared state {instr.state!r}")
    if instr.is_stateful and instr.state is None:
        issues.append(f"uid {instr.uid}: stateful opcode {instr.opcode.value} without state")
    if instr.guard is not None and not _is_known(instr.guard, defined):
        issues.append(f"uid {instr.uid}: guard {instr.guard!r} used before definition")
    for operand in instr.operands:
        if isinstance(operand, str) and not _is_known(operand, defined):
            issues.append(
                f"uid {instr.uid}: operand {operand!r} used before definition"
            )
    if instr.opcode is Opcode.SELECT and len(instr.operands) != 3:
        issues.append(f"uid {instr.uid}: select needs exactly 3 operands")
    return issues


def _is_known(name: str, defined: set) -> bool:
    """A variable is known if previously defined or a header / constant ref."""
    if name in defined:
        return True
    if name.startswith("hdr."):
        # header sub-fields (e.g. hdr.feat[3]) are resolved by the emulator
        return True
    if name.startswith("meta.") or name.startswith("const."):
        return True
    return False
