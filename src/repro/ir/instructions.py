"""IR instruction set, operand model and device-capability classification.

The ClickINC IR (paper §4.2, Appendix A.4) is a flat, sequentially executed
instruction list without control-flow transfer: branches are lowered to
guarded (predicated) instructions by the frontend, and loops are unrolled.

Each instruction belongs to exactly one *capability class* (paper Table 9).
Devices declare the set of classes they support, which rules out impossible
placements before any resource accounting happens.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Iterable, Optional, Tuple

from repro.exceptions import IRError


class Opcode(str, enum.Enum):
    """Operation codes of the platform-independent IR.

    The set merges the per-platform functional units of paper Table 8 with
    the arithmetic / logic operations of the IR syntax (paper Fig. 17).
    """

    # -- arithmetic / logic on stateless operands ------------------------
    ADD = "add"
    SUB = "sub"
    MUL = "mul"
    DIV = "div"
    MOD = "mod"
    FADD = "fadd"          # floating point addition
    FSUB = "fsub"
    FMUL = "fmul"
    FDIV = "fdiv"
    AND = "and"
    OR = "or"
    XOR = "xor"
    NOT = "not"
    SHL = "shl"
    SHR = "shr"
    SLICE = "slice"        # bit slicing
    MOV = "mov"            # register-to-register / immediate move
    MIN = "min"
    MAX = "max"
    ABS = "abs"
    CMP_LT = "cmp_lt"
    CMP_LE = "cmp_le"
    CMP_GT = "cmp_gt"
    CMP_GE = "cmp_ge"
    CMP_EQ = "cmp_eq"
    CMP_NE = "cmp_ne"
    SELECT = "select"      # ternary select: dst = pred ? a : b

    # -- stateful array / register operations ----------------------------
    REG_READ = "reg_read"
    REG_WRITE = "reg_write"
    REG_ADD = "reg_add"        # read-modify-write accumulate
    REG_CLEAR = "reg_clear"
    REG_DELETE = "reg_delete"

    # -- match tables ------------------------------------------------------
    EMT_LOOKUP = "emt_lookup"      # stateless exact-match table
    SEMT_LOOKUP = "semt_lookup"    # stateful exact-match table (data-plane write)
    SEMT_WRITE = "semt_write"
    TMT_LOOKUP = "tmt_lookup"      # ternary match
    STMT_LOOKUP = "stmt_lookup"    # stateful ternary match
    STMT_WRITE = "stmt_write"
    LPM_LOOKUP = "lpm_lookup"      # longest-prefix match
    DMT_LOOKUP = "dmt_lookup"      # direct (index) match

    # -- hashing / checksum / crypto --------------------------------------
    HASH_CRC = "hash_crc"
    HASH_IDENTITY = "hash_identity"
    CHECKSUM = "checksum"
    RANDINT = "randint"
    CRYPTO_AES = "crypto_aes"
    CRYPTO_ECS = "crypto_ecs"

    # -- packet-flow primitives -------------------------------------------
    DROP = "drop"
    FORWARD = "forward"
    SEND_BACK = "send_back"      # reflect packet to its sender
    COPY_TO = "copy_to"          # copy to CPU / control plane
    MIRROR = "mirror"
    MULTICAST = "multicast"

    # -- header / metadata ---------------------------------------------------
    HDR_READ = "hdr_read"
    HDR_WRITE = "hdr_write"
    HDR_INSERT = "hdr_insert"
    HDR_REMOVE = "hdr_remove"
    PARSE = "parse"

    # -- declaration pseudo-instructions -----------------------------------
    DECL_STATE = "decl_state"
    NOP = "nop"


class InstrClass(str, enum.Enum):
    """Device-capability class of an instruction (paper Table 9)."""

    BIN = "BIN"      # integer add/sub, bit & logic ops, slicing
    BIC = "BIC"      # integer multiply, divide, modulus
    BCA = "BCA"      # floating point and other complex arithmetic
    BSO = "BSO"      # stateful array (register) operations
    BEM = "BEM"      # stateless exact-match table
    BSEM = "BSEM"    # stateful exact-match table
    BNEM = "BNEM"    # ternary / LPM match table
    BSNEM = "BSNEM"  # stateful ternary / LPM match table
    BDM = "BDM"      # direct (index) match table
    BBPF = "BBPF"    # basic packet flow: drop, send, copy-to
    BAPF = "BAPF"    # advanced packet flow: mirror, multicast
    BAF = "BAF"      # auxiliary functions: hash, checksum, random
    BCF = "BCF"      # crypto functions
    META = "META"    # declarations, parsing, header access, nop


#: Mapping from opcode to its capability class.
_OPCODE_CLASS: dict[Opcode, InstrClass] = {
    Opcode.ADD: InstrClass.BIN,
    Opcode.SUB: InstrClass.BIN,
    Opcode.AND: InstrClass.BIN,
    Opcode.OR: InstrClass.BIN,
    Opcode.XOR: InstrClass.BIN,
    Opcode.NOT: InstrClass.BIN,
    Opcode.SHL: InstrClass.BIN,
    Opcode.SHR: InstrClass.BIN,
    Opcode.SLICE: InstrClass.BIN,
    Opcode.MOV: InstrClass.BIN,
    Opcode.MIN: InstrClass.BIN,
    Opcode.MAX: InstrClass.BIN,
    Opcode.ABS: InstrClass.BIN,
    Opcode.CMP_LT: InstrClass.BIN,
    Opcode.CMP_LE: InstrClass.BIN,
    Opcode.CMP_GT: InstrClass.BIN,
    Opcode.CMP_GE: InstrClass.BIN,
    Opcode.CMP_EQ: InstrClass.BIN,
    Opcode.CMP_NE: InstrClass.BIN,
    Opcode.SELECT: InstrClass.BIN,
    Opcode.MUL: InstrClass.BIC,
    Opcode.DIV: InstrClass.BIC,
    Opcode.MOD: InstrClass.BIC,
    Opcode.FADD: InstrClass.BCA,
    Opcode.FSUB: InstrClass.BCA,
    Opcode.FMUL: InstrClass.BCA,
    Opcode.FDIV: InstrClass.BCA,
    Opcode.REG_READ: InstrClass.BSO,
    Opcode.REG_WRITE: InstrClass.BSO,
    Opcode.REG_ADD: InstrClass.BSO,
    Opcode.REG_CLEAR: InstrClass.BSO,
    Opcode.REG_DELETE: InstrClass.BSO,
    Opcode.EMT_LOOKUP: InstrClass.BEM,
    Opcode.SEMT_LOOKUP: InstrClass.BSEM,
    Opcode.SEMT_WRITE: InstrClass.BSEM,
    Opcode.TMT_LOOKUP: InstrClass.BNEM,
    Opcode.LPM_LOOKUP: InstrClass.BNEM,
    Opcode.STMT_LOOKUP: InstrClass.BSNEM,
    Opcode.STMT_WRITE: InstrClass.BSNEM,
    Opcode.DMT_LOOKUP: InstrClass.BDM,
    Opcode.HASH_CRC: InstrClass.BAF,
    Opcode.HASH_IDENTITY: InstrClass.BAF,
    Opcode.CHECKSUM: InstrClass.BAF,
    Opcode.RANDINT: InstrClass.BAF,
    Opcode.CRYPTO_AES: InstrClass.BCF,
    Opcode.CRYPTO_ECS: InstrClass.BCF,
    Opcode.DROP: InstrClass.BBPF,
    Opcode.FORWARD: InstrClass.BBPF,
    Opcode.SEND_BACK: InstrClass.BBPF,
    Opcode.COPY_TO: InstrClass.BBPF,
    Opcode.MIRROR: InstrClass.BAPF,
    Opcode.MULTICAST: InstrClass.BAPF,
    Opcode.HDR_READ: InstrClass.META,
    Opcode.HDR_WRITE: InstrClass.META,
    Opcode.HDR_INSERT: InstrClass.META,
    Opcode.HDR_REMOVE: InstrClass.META,
    Opcode.PARSE: InstrClass.META,
    Opcode.DECL_STATE: InstrClass.META,
    Opcode.NOP: InstrClass.META,
}

#: Opcodes whose class is "stateful" — they read or write persistent state.
STATEFUL_OPCODES: frozenset[Opcode] = frozenset(
    {
        Opcode.REG_READ,
        Opcode.REG_WRITE,
        Opcode.REG_ADD,
        Opcode.REG_CLEAR,
        Opcode.REG_DELETE,
        Opcode.SEMT_LOOKUP,
        Opcode.SEMT_WRITE,
        Opcode.STMT_LOOKUP,
        Opcode.STMT_WRITE,
    }
)

#: Opcodes that terminate or redirect a packet.
PACKET_FLOW_OPCODES: frozenset[Opcode] = frozenset(
    {
        Opcode.DROP,
        Opcode.FORWARD,
        Opcode.SEND_BACK,
        Opcode.COPY_TO,
        Opcode.MIRROR,
        Opcode.MULTICAST,
    }
)


def classify(opcode: Opcode) -> InstrClass:
    """Return the capability class of *opcode*.

    Raises :class:`~repro.exceptions.IRError` for unknown opcodes so that an
    incomplete mapping is caught during testing rather than silently treated
    as unconstrained.
    """
    try:
        return _OPCODE_CLASS[opcode]
    except KeyError as exc:  # pragma: no cover - defensive
        raise IRError(f"opcode {opcode!r} has no capability class") from exc


class StateKind(str, enum.Enum):
    """Kind of persistent state object a :class:`StateDecl` declares."""

    REGISTER_ARRAY = "register_array"   # stateful array / register file
    EXACT_TABLE = "exact_table"         # exact-match table
    TERNARY_TABLE = "ternary_table"     # ternary / LPM match table
    DIRECT_TABLE = "direct_table"       # index-addressed table
    COUNTER = "counter"
    METER = "meter"


@dataclass(frozen=True)
class StateDecl:
    """Declaration of a persistent (inter-packet) state object.

    Attributes
    ----------
    name:
        Globally unique variable name (after per-user renaming).
    kind:
        What hardware structure backs the state.
    rows:
        Number of parallel arrays/tables (e.g. 3 for a 3-row count-min sketch).
    size:
        Entries per row.
    width:
        Bit width of each entry value.
    key_width:
        Bit width of the match key (match tables only).
    owner:
        Annotation of the owning user program (used by synthesis/isolation).
    """

    name: str
    kind: StateKind
    rows: int = 1
    size: int = 1
    width: int = 32
    key_width: int = 0
    owner: Optional[str] = None

    def __post_init__(self) -> None:
        if self.rows <= 0 or self.size <= 0 or self.width <= 0:
            raise IRError(
                f"state {self.name!r}: rows/size/width must be positive "
                f"(got rows={self.rows}, size={self.size}, width={self.width})"
            )

    @property
    def total_bits(self) -> int:
        """Total storage requirement of this state object in bits."""
        return self.rows * self.size * (self.width + self.key_width)

    def renamed(self, new_name: str) -> "StateDecl":
        """Return a copy with a different name (used for user isolation)."""
        return replace(self, name=new_name)


@dataclass
class Instruction:
    """A single IR instruction.

    IR instructions are executed sequentially.  Conditionals are expressed via
    the optional ``guard``: the instruction only takes effect when the guard
    variable evaluates to a truthy value at runtime (the frontend lowers
    ``if c: x = e`` into a comparison producing ``c`` plus a guarded
    assignment).

    Attributes
    ----------
    opcode:
        The operation to perform.
    dst:
        Destination variable name (``None`` for pure side-effect opcodes such
        as ``drop``).
    operands:
        Source operand names or integer/float immediates.
    state:
        Name of the persistent state object read/written, if any.
    guard:
        Name of the predicate variable guarding this instruction, if any.
    guard_negated:
        When True the instruction executes only if the guard is falsy.
    width:
        Bit width of the destination value.
    owner:
        User-program annotation (set by synthesis for incremental removal).
    uid:
        Stable per-program instruction id assigned by :class:`IRProgram`.
    """

    opcode: Opcode
    dst: Optional[str] = None
    operands: Tuple[object, ...] = ()
    state: Optional[str] = None
    guard: Optional[str] = None
    guard_negated: bool = False
    width: int = 32
    owner: Optional[str] = None
    uid: int = -1
    annotations: set = field(default_factory=set)

    def __post_init__(self) -> None:
        if not isinstance(self.opcode, Opcode):
            raise IRError(f"opcode must be an Opcode, got {self.opcode!r}")
        self.operands = tuple(self.operands)

    # -- classification helpers -------------------------------------------
    @property
    def instr_class(self) -> InstrClass:
        """Capability class of this instruction (paper Table 9)."""
        return classify(self.opcode)

    @property
    def is_stateful(self) -> bool:
        """True if the instruction touches persistent (inter-packet) state."""
        return self.opcode in STATEFUL_OPCODES

    @property
    def is_packet_flow(self) -> bool:
        """True for drop/forward/mirror/... packet-flow primitives."""
        return self.opcode in PACKET_FLOW_OPCODES

    @property
    def is_declaration(self) -> bool:
        return self.opcode is Opcode.DECL_STATE

    # -- dataflow helpers ----------------------------------------------------
    def reads(self) -> Tuple[str, ...]:
        """Variable names read by this instruction (operands + guard)."""
        names = [op for op in self.operands if isinstance(op, str)]
        if self.guard is not None:
            names.append(self.guard)
        return tuple(names)

    def writes(self) -> Tuple[str, ...]:
        """Variable names written by this instruction."""
        return (self.dst,) if self.dst is not None else ()

    def with_owner(self, owner: str) -> "Instruction":
        """Return a shallow copy annotated with *owner*."""
        clone = self.copy()
        clone.owner = owner
        clone.annotations = set(self.annotations) | {owner}
        return clone

    def copy(self) -> "Instruction":
        """Return an independent copy of this instruction."""
        return Instruction(
            opcode=self.opcode,
            dst=self.dst,
            operands=tuple(self.operands),
            state=self.state,
            guard=self.guard,
            guard_negated=self.guard_negated,
            width=self.width,
            owner=self.owner,
            uid=self.uid,
            annotations=set(self.annotations),
        )

    def rename_vars(self, mapping: dict) -> "Instruction":
        """Return a copy with variable names substituted per *mapping*.

        Both operands, destination, guard and state references are renamed.
        Names missing from *mapping* are kept as-is.
        """
        clone = self.copy()
        clone.dst = mapping.get(self.dst, self.dst) if self.dst else self.dst
        clone.operands = tuple(
            mapping.get(op, op) if isinstance(op, str) else op for op in self.operands
        )
        clone.guard = mapping.get(self.guard, self.guard) if self.guard else self.guard
        clone.state = mapping.get(self.state, self.state) if self.state else self.state
        return clone

    def __str__(self) -> str:  # pragma: no cover - repr convenience
        parts = []
        if self.guard is not None:
            neg = "!" if self.guard_negated else ""
            parts.append(f"[{neg}{self.guard}]")
        if self.dst is not None:
            parts.append(f"{self.dst} =")
        parts.append(self.opcode.value)
        if self.state is not None:
            parts.append(f"@{self.state}")
        if self.operands:
            parts.append(", ".join(str(op) for op in self.operands))
        return " ".join(parts)


def iter_reads(instructions: Iterable[Instruction]) -> set:
    """Union of all variable names read by *instructions*."""
    names: set = set()
    for instr in instructions:
        names.update(instr.reads())
    return names


def iter_writes(instructions: Iterable[Instruction]) -> set:
    """Union of all variable names written by *instructions*."""
    names: set = set()
    for instr in instructions:
        names.update(instr.writes())
    return names


def resource_footprint(instr: Instruction) -> dict:
    """Coarse per-instruction resource demand used by placement.

    Returns a dict with keys understood by the device models:
    ``alu`` (stateless ALUs), ``salu`` (stateful ALUs), ``hash`` (hash units),
    ``tcam_bits``, ``sram_bits``, ``gateway`` (predicate resources),
    ``dsp`` (complex arithmetic units).
    """
    cls = instr.instr_class
    demand = {
        "alu": 0,
        "salu": 0,
        "hash": 0,
        "tcam_bits": 0,
        "sram_bits": 0,
        "gateway": 1 if instr.guard is not None else 0,
        "dsp": 0,
    }
    if cls in (InstrClass.BIN, InstrClass.BIC):
        demand["alu"] = 1
        if cls is InstrClass.BIC:
            demand["dsp"] = 1
    elif cls is InstrClass.BCA:
        demand["dsp"] = 2
    elif cls is InstrClass.BSO:
        demand["salu"] = 1
    elif cls in (InstrClass.BEM, InstrClass.BSEM, InstrClass.BDM):
        demand["sram_bits"] = instr.width
        demand["hash"] = 1
    elif cls in (InstrClass.BNEM, InstrClass.BSNEM):
        demand["tcam_bits"] = instr.width
    elif cls is InstrClass.BAF:
        demand["hash"] = 1
    elif cls is InstrClass.BCF:
        demand["dsp"] = 4
    return demand
