"""IR program container.

An :class:`IRProgram` is an ordered list of :class:`~repro.ir.instructions.Instruction`
plus the persistent-state declarations and the header fields the program
parses.  IR programs are sequentially executed — there is no goto/jump — which
matches the single-pass pipeline constraint of programmable switches
(paper §4.2).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.exceptions import IRError
from repro.ir.instructions import (
    InstrClass,
    Instruction,
    Opcode,
    StateDecl,
    resource_footprint,
)


@dataclass
class HeaderField:
    """A packet-header field the program reads or writes.

    ``name`` is referenced from instructions as ``hdr.<name>``; ``width`` is
    the field's bit width.  Fields are grouped into a per-application INC
    header by the synthesis layer.
    """

    name: str
    width: int
    is_vector: bool = False
    length: int = 1

    def __post_init__(self) -> None:
        if self.width <= 0:
            raise IRError(f"header field {self.name!r} must have positive width")
        if self.length <= 0:
            raise IRError(f"header field {self.name!r} must have positive length")

    @property
    def total_bits(self) -> int:
        return self.width * self.length


class IRProgram:
    """Container for a platform-independent ClickINC IR program.

    Parameters
    ----------
    name:
        Program name; also used as the default owner annotation.
    instructions:
        Optional initial instruction sequence.
    states:
        Optional initial persistent state declarations.
    header_fields:
        Optional packet header fields used by the program.
    """

    def __init__(
        self,
        name: str,
        instructions: Optional[Iterable[Instruction]] = None,
        states: Optional[Iterable[StateDecl]] = None,
        header_fields: Optional[Iterable[HeaderField]] = None,
    ) -> None:
        self.name = name
        self._instructions: List[Instruction] = []
        self._states: Dict[str, StateDecl] = {}
        self._header_fields: Dict[str, HeaderField] = {}
        self._next_uid = 0
        for state in states or ():
            self.declare_state(state)
        for fld in header_fields or ():
            self.declare_header_field(fld)
        for instr in instructions or ():
            self.append(instr)

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    def append(self, instr: Instruction) -> Instruction:
        """Append *instr*, assigning it a unique uid, and return it."""
        if instr.state is not None and instr.state not in self._states:
            raise IRError(
                f"instruction references undeclared state {instr.state!r} "
                f"in program {self.name!r}"
            )
        instr.uid = self._next_uid
        self._next_uid += 1
        if instr.owner is None:
            instr.owner = self.name
        instr.annotations.add(instr.owner)
        self._instructions.append(instr)
        return instr

    def extend(self, instructions: Iterable[Instruction]) -> None:
        for instr in instructions:
            self.append(instr)

    def emit(self, opcode: Opcode, dst: Optional[str] = None, *operands, **kwargs) -> Instruction:
        """Convenience builder: create, append and return an instruction."""
        instr = Instruction(opcode=opcode, dst=dst, operands=tuple(operands), **kwargs)
        return self.append(instr)

    def declare_state(self, state: StateDecl) -> StateDecl:
        if state.name in self._states:
            raise IRError(f"duplicate state declaration {state.name!r}")
        if state.owner is None:
            state = StateDecl(
                name=state.name,
                kind=state.kind,
                rows=state.rows,
                size=state.size,
                width=state.width,
                key_width=state.key_width,
                owner=self.name,
            )
        self._states[state.name] = state
        return state

    def declare_header_field(self, fld: HeaderField) -> HeaderField:
        if fld.name in self._header_fields:
            existing = self._header_fields[fld.name]
            if existing.width != fld.width or existing.length != fld.length:
                raise IRError(
                    f"conflicting redeclaration of header field {fld.name!r}"
                )
            return existing
        self._header_fields[fld.name] = fld
        return fld

    # ------------------------------------------------------------------ #
    # accessors
    # ------------------------------------------------------------------ #
    @property
    def instructions(self) -> Tuple[Instruction, ...]:
        return tuple(self._instructions)

    @property
    def states(self) -> Dict[str, StateDecl]:
        return dict(self._states)

    @property
    def header_fields(self) -> Dict[str, HeaderField]:
        return dict(self._header_fields)

    def __len__(self) -> int:
        return len(self._instructions)

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self._instructions)

    def __getitem__(self, index: int) -> Instruction:
        return self._instructions[index]

    def get_state(self, name: str) -> StateDecl:
        try:
            return self._states[name]
        except KeyError as exc:
            raise IRError(f"unknown state {name!r} in program {self.name!r}") from exc

    # ------------------------------------------------------------------ #
    # analysis helpers
    # ------------------------------------------------------------------ #
    def instruction_classes(self) -> Dict[InstrClass, int]:
        """Histogram of capability classes used by this program."""
        histogram: Dict[InstrClass, int] = {}
        for instr in self._instructions:
            cls = instr.instr_class
            histogram[cls] = histogram.get(cls, 0) + 1
        return histogram

    def used_classes(self) -> frozenset:
        return frozenset(instr.instr_class for instr in self._instructions)

    def stateful_variables(self) -> frozenset:
        """Names of persistent states actually referenced by instructions."""
        return frozenset(
            instr.state for instr in self._instructions if instr.state is not None
        )

    def temporary_variables(self) -> frozenset:
        """Packet-lifetime variables (everything written that is not state)."""
        written = {instr.dst for instr in self._instructions if instr.dst}
        return frozenset(name for name in written if name not in self._states)

    def resource_summary(self) -> Dict[str, int]:
        """Aggregate per-resource demand over all instructions plus state memory."""
        totals: Dict[str, int] = {}
        for instr in self._instructions:
            for key, value in resource_footprint(instr).items():
                totals[key] = totals.get(key, 0) + value
        state_bits = sum(state.total_bits for state in self._states.values())
        totals["state_bits"] = totals.get("state_bits", 0) + state_bits
        return totals

    def loc(self) -> int:
        """Lines of IR code — the instruction count (used in LoC benchmarks)."""
        return len(self._instructions)

    # ------------------------------------------------------------------ #
    # transformation helpers
    # ------------------------------------------------------------------ #
    def copy(self, new_name: Optional[str] = None) -> "IRProgram":
        """Deep-copy the program (instructions, states and header fields)."""
        clone = IRProgram(new_name or self.name)
        for state in self._states.values():
            clone.declare_state(state)
        for fld in self._header_fields.values():
            clone.declare_header_field(fld)
        for instr in self._instructions:
            clone.append(instr.copy())
        return clone

    def rebrand(self, new_name: str) -> "IRProgram":
        """Return a copy re-owned by *new_name*.

        Unlike :meth:`copy`, every owner annotation that pointed at the old
        program name — instruction owners/annotations and state owners — is
        rewritten to *new_name*.  This is how the artifact cache hands one
        compiled template out to many tenants: the instruction stream is
        shared content, the ownership metadata is per-tenant.
        """
        old_name = self.name
        clone = IRProgram(new_name)
        for state in self._states.values():
            if state.owner == old_name:
                state = replace(state, owner=new_name)
            clone.declare_state(state)
        for fld in self._header_fields.values():
            clone.declare_header_field(fld)
        for instr in self._instructions:
            kept = instr.copy()
            if kept.owner == old_name:
                kept.owner = new_name
            kept.annotations = {
                new_name if a == old_name else a for a in kept.annotations
            }
            clone.append(kept)
        return clone

    def renamed(self, prefix: str) -> "IRProgram":
        """Return a copy with every state and temporary prefixed by *prefix*.

        This is the isolation step of the synthesis layer (paper §6): each
        user's variables are rewritten (e.g. ``mtb`` → ``kvs_0_mtb``) so two
        programs never share a memory region after merging.
        """
        mapping: Dict[str, str] = {}
        for name in self._states:
            mapping[name] = f"{prefix}_{name}"
        for name in self.temporary_variables():
            mapping[name] = f"{prefix}_{name}"
        clone = IRProgram(self.name)
        for state in self._states.values():
            clone.declare_state(state.renamed(mapping[state.name]))
        for fld in self._header_fields.values():
            clone.declare_header_field(fld)
        for instr in self._instructions:
            clone.append(instr.rename_vars(mapping))
        return clone

    def without_owner(self, owner: str) -> "IRProgram":
        """Return a copy with *owner*'s annotation stripped.

        Instructions left with no annotation are removed — this implements the
        incremental program-removal rule of paper §6.
        """
        clone = IRProgram(self.name)
        for state in self._states.values():
            if state.owner != owner:
                clone.declare_state(state)
        for fld in self._header_fields.values():
            clone.declare_header_field(fld)
        for instr in self._instructions:
            remaining = set(instr.annotations) - {owner}
            if not remaining:
                continue
            kept = instr.copy()
            kept.annotations = remaining
            if kept.owner == owner:
                kept.owner = sorted(remaining)[0]
            if kept.state is not None and kept.state not in clone.states:
                # the state belonged to the removed owner; drop the instruction
                continue
            clone.append(kept)
        return clone

    def pretty(self) -> str:
        """Human-readable multi-line dump of the program."""
        lines = [f"; IR program {self.name!r}"]
        for state in self._states.values():
            lines.append(
                f"decl {state.kind.value} {state.name} "
                f"rows={state.rows} size={state.size} width={state.width}"
            )
        for instr in self._instructions:
            lines.append(f"{instr.uid:4d}: {instr}")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover
        return f"IRProgram(name={self.name!r}, instructions={len(self)})"
